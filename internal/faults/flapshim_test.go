package faults

import (
	"testing"
	"time"
)

// TestFlapShimByteIdentical replays the pre-routedyn salt derivation —
// inlined here verbatim from the old implementation — against the
// delegated one over a dense virtual-time sweep. Any pre-existing flap
// scenario (seed, router, period) must produce bit-identical salt
// sequences, and therefore byte-identical measurement results, after the
// unification.
func TestFlapShimByteIdentical(t *testing.T) {
	oldHash := func(s string) uint64 {
		h := uint64(14695981039346656037)
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		return h
	}
	oldMix := func(x uint64) uint64 {
		x += 0x9e3779b97f4a7c15
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return x
	}
	oldRouteSalt := func(seed int64, routerID string, period, now time.Duration) uint64 {
		base := oldMix(uint64(seed) ^ oldHash(routerID))
		epoch := uint64(now / period)
		if epoch == 0 {
			return 0
		}
		return oldMix(base ^ (epoch+1)*0xbf58476d1ce4e5b9)
	}

	for _, seed := range []int64{1, 5, 18, 42, -3} {
		for _, router := range []string{"r1", "r5", "bb-az-1"} {
			for _, period := range []time.Duration{time.Minute, 5 * time.Minute, 7 * time.Minute} {
				e := NewEngine(seed).FlapRoutes(router, period)
				for now := time.Duration(0); now < 30*time.Minute; now += 13 * time.Second {
					want := oldRouteSalt(seed, router, period, now)
					if got := e.RouteSalt(router, now); got != want {
						t.Fatalf("seed %d router %s period %v now %v: RouteSalt = %#x, want %#x",
							seed, router, period, now, got, want)
					}
				}
			}
		}
	}

	// CloneSeeded re-derives through the same chain.
	e := NewEngine(5).FlapRoutes("r9", time.Minute)
	c := e.CloneSeeded(77)
	if got, want := c.RouteSalt("r9", 3*time.Minute), oldRouteSalt(77, "r9", time.Minute, 3*time.Minute); got != want {
		t.Fatalf("CloneSeeded RouteSalt = %#x, want %#x", got, want)
	}
}
