package faults

import (
	"testing"
	"time"
)

// sample drains a deterministic sequence of events from an engine.
func sample(e *Engine, n int) []Outcome {
	out := make([]Outcome, 0, 3*n)
	for i := 0; i < n; i++ {
		now := time.Duration(i) * 100 * time.Millisecond
		out = append(out, e.Global(now), e.Cross("r1", "r2", now))
		out = append(out, Outcome{Drop: !e.AllowICMP("r2", now)})
	}
	return out
}

func cloneTestEngine(seed int64) *Engine {
	return NewEngine(seed).
		AddGlobal(UniformLoss(0.3)).
		AddGlobal(Duplication(0.2)).
		AddLink("r1", "r2", GilbertElliott(0.1, 0.4, 0.01, 0.9)).
		AddLink("r1", "r2", Blackhole(2*time.Second, 4*time.Second)).
		LimitICMP("r2", 3, 1).
		SilenceICMP("r9").
		FlapRoutes("r5", 10*time.Second)
}

// TestEngineCloneMatchesFreshBuild: a clone of a pristine engine draws the
// exact streams of a freshly constructed identical engine — registration
// ids survive cloning, so generator derivation is unchanged.
func TestEngineCloneMatchesFreshBuild(t *testing.T) {
	a := cloneTestEngine(42)
	b := cloneTestEngine(42).Clone()
	sa, sb := sample(a, 200), sample(b, 200)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("event %d: fresh=%v clone=%v", i, sa[i], sb[i])
		}
	}
	if a.Seed() != b.Seed() {
		t.Errorf("clone seed = %d, want %d", b.Seed(), a.Seed())
	}
}

// TestEngineClonePristine: cloning a used engine rewinds all state — the
// clone draws like a fresh engine, not like the used one, and further
// draws on either side never perturb the other.
func TestEngineClonePristine(t *testing.T) {
	used := cloneTestEngine(42)
	sample(used, 137) // burn state: rng streams, GE chain, ICMP tokens

	clone := used.Clone()
	fresh := cloneTestEngine(42)
	sc, sf := sample(clone, 200), sample(fresh, 200)
	for i := range sc {
		if sc[i] != sf[i] {
			t.Fatalf("event %d: clone of used engine diverged from fresh build", i)
		}
	}

	// Independence: interleave draws on the original between clone draws.
	c2 := cloneTestEngine(7)
	clone2 := c2.Clone()
	want := sample(cloneTestEngine(7), 100)
	got := make([]Outcome, 0, len(want))
	for i := 0; i < 100; i++ {
		c2.Global(0) // noise on the original only
		now := time.Duration(i) * 100 * time.Millisecond
		got = append(got, clone2.Global(now), clone2.Cross("r1", "r2", now))
		got = append(got, Outcome{Drop: !clone2.AllowICMP("r2", now)})
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: draws on the original perturbed the clone", i)
		}
	}
}

// TestEngineCloneSeeded: a different seed re-derives every stream and
// every flap salt; the same label always derives the same sub-seed.
func TestEngineCloneSeeded(t *testing.T) {
	base := cloneTestEngine(42)
	same := base.CloneSeeded(42)
	other := base.CloneSeeded(43)
	ss, so := sample(same, 200), sample(other, 200)
	diverged := false
	for i := range ss {
		if ss[i] != so[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("CloneSeeded(43) drew identically to seed 42 over 600 events")
	}
	if base.RouteSalt("r5", 15*time.Second) == other.RouteSalt("r5", 15*time.Second) {
		t.Error("flap salt did not re-derive under the new seed")
	}
	if same.RouteSalt("r5", 15*time.Second) != base.RouteSalt("r5", 15*time.Second) {
		t.Error("same-seed clone flap salt differs from the original")
	}

	if DeriveSeed(42, "a|0") != DeriveSeed(42, "a|0") {
		t.Error("DeriveSeed is not deterministic")
	}
	if DeriveSeed(42, "a|0") == DeriveSeed(42, "a|1") {
		t.Error("DeriveSeed collides across labels")
	}
	if DeriveSeed(42, "a|0") == DeriveSeed(43, "a|0") {
		t.Error("DeriveSeed ignores the base seed")
	}
}

// TestEngineCloneNil: a nil engine clones to nil, so callers can pass
// through un-faulted networks without special cases.
func TestEngineCloneNil(t *testing.T) {
	var e *Engine
	if e.CloneSeeded(1) != nil {
		t.Error("nil engine should clone to nil")
	}
}
