package faults

import (
	"testing"
	"time"
)

func TestUniformLossRate(t *testing.T) {
	e := NewEngine(1).AddGlobal(UniformLoss(0.3))
	drops := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if e.Global(0).Drop {
			drops++
		}
	}
	rate := float64(drops) / n
	if rate < 0.25 || rate > 0.35 {
		t.Errorf("uniform loss rate = %.3f, want ≈0.3", rate)
	}
}

func TestUniformLossZeroNeverDrops(t *testing.T) {
	e := NewEngine(1).AddGlobal(UniformLoss(0))
	for i := 0; i < 100; i++ {
		if o := e.Global(0); o.Drop || o.Duplicate {
			t.Fatal("zero-rate loss dropped a packet")
		}
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	// Bad state loses everything, Good state nothing: drops must appear in
	// runs whose mean length approximates 1/pBadToGood.
	e := NewEngine(7).AddGlobal(GilbertElliott(0.02, 0.25, 0, 1))
	var runs []int
	cur := 0
	for i := 0; i < 50000; i++ {
		if e.Global(0).Drop {
			cur++
		} else if cur > 0 {
			runs = append(runs, cur)
			cur = 0
		}
	}
	if len(runs) < 50 {
		t.Fatalf("only %d loss bursts observed", len(runs))
	}
	total := 0
	for _, r := range runs {
		total += r
	}
	mean := float64(total) / float64(len(runs))
	// Mean sojourn in Bad is 1/0.25 = 4 packets.
	if mean < 2.5 || mean > 6 {
		t.Errorf("mean burst length = %.2f, want ≈4", mean)
	}
}

func TestBlackholeWindow(t *testing.T) {
	e := NewEngine(1).AddLink("a", "b", Blackhole(10*time.Second, 20*time.Second))
	for _, tc := range []struct {
		now  time.Duration
		drop bool
	}{
		{0, false},
		{10*time.Second - 1, false},
		{10 * time.Second, true},
		{15 * time.Second, true},
		{20*time.Second - 1, true},
		{20 * time.Second, false},
		{time.Hour, false},
	} {
		if got := e.Cross("a", "b", tc.now).Drop; got != tc.drop {
			t.Errorf("blackhole at %s: drop=%v, want %v", tc.now, got, tc.drop)
		}
		// Undirected: the reverse crossing behaves identically.
		if got := e.Cross("b", "a", tc.now).Drop; got != tc.drop {
			t.Errorf("reverse blackhole at %s: drop=%v, want %v", tc.now, got, tc.drop)
		}
	}
}

func TestLinkScopingDoesNotLeak(t *testing.T) {
	e := NewEngine(1).AddLink("a", "b", Blackhole(0, time.Hour))
	if e.Cross("a", "c", 0).Drop {
		t.Error("impairment on a–b leaked onto a–c")
	}
	if e.Global(0).Drop {
		t.Error("link impairment leaked into global scope")
	}
}

func TestDuplication(t *testing.T) {
	e := NewEngine(3).AddGlobal(Duplication(0.5))
	dups := 0
	const n = 2000
	for i := 0; i < n; i++ {
		o := e.Global(0)
		if o.Drop {
			t.Fatal("duplication must never drop")
		}
		if o.Duplicate {
			dups++
		}
	}
	rate := float64(dups) / n
	if rate < 0.4 || rate > 0.6 {
		t.Errorf("duplication rate = %.3f, want ≈0.5", rate)
	}
}

func TestSilenceICMP(t *testing.T) {
	e := NewEngine(1).SilenceICMP("r2")
	if e.AllowICMP("r2", 0) {
		t.Error("silenced router allowed ICMP")
	}
	if !e.AllowICMP("r3", 0) {
		t.Error("unsilenced router denied ICMP")
	}
}

func TestICMPTokenBucket(t *testing.T) {
	e := NewEngine(1).LimitICMP("r", 2, 0.1) // 2-token burst, 1 token per 10s
	if !e.AllowICMP("r", 0) || !e.AllowICMP("r", 0) {
		t.Fatal("burst tokens not granted")
	}
	if e.AllowICMP("r", 0) {
		t.Error("third immediate ICMP should be rate-limited")
	}
	// After 10 virtual seconds one token has refilled.
	if !e.AllowICMP("r", 10*time.Second) {
		t.Error("token did not refill after 10s")
	}
	if e.AllowICMP("r", 10*time.Second) {
		t.Error("second token granted without refill time")
	}
	// A long idle period refills to the burst cap, not beyond.
	if !e.AllowICMP("r", time.Hour) || !e.AllowICMP("r", time.Hour) {
		t.Error("bucket did not refill to burst cap")
	}
	if e.AllowICMP("r", time.Hour) {
		t.Error("bucket exceeded burst cap")
	}
}

func TestRouteSaltEpochs(t *testing.T) {
	e := NewEngine(42).FlapRoutes("r1", 5*time.Minute)
	if got := e.RouteSalt("r1", 0); got != 0 {
		t.Errorf("epoch 0 salt = %d, want 0 (canonical route first)", got)
	}
	s1 := e.RouteSalt("r1", 5*time.Minute)
	s2 := e.RouteSalt("r1", 10*time.Minute)
	if s1 == 0 || s2 == 0 || s1 == s2 {
		t.Errorf("epoch salts not distinct/nonzero: %d %d", s1, s2)
	}
	// Stable within an epoch.
	if e.RouteSalt("r1", 5*time.Minute+30*time.Second) != s1 {
		t.Error("salt changed within an epoch")
	}
	// Routers without a policy are unperturbed.
	if e.RouteSalt("r2", time.Hour) != 0 {
		t.Error("flap leaked onto unflapped router")
	}
}

func TestDeterminismAcrossEngines(t *testing.T) {
	build := func() *Engine {
		return NewEngine(99).
			AddGlobal(UniformLoss(0.2)).
			AddGlobal(Duplication(0.1)).
			AddLink("a", "b", GilbertElliott(0.05, 0.3, 0, 0.8)).
			FlapRoutes("r1", time.Minute).
			LimitICMP("r2", 3, 0.5)
	}
	e1, e2 := build(), build()
	for i := 0; i < 5000; i++ {
		now := time.Duration(i) * time.Second
		if e1.Global(now) != e2.Global(now) {
			t.Fatalf("global outcome diverged at %d", i)
		}
		if e1.Cross("a", "b", now) != e2.Cross("a", "b", now) {
			t.Fatalf("link outcome diverged at %d", i)
		}
		if e1.AllowICMP("r2", now) != e2.AllowICMP("r2", now) {
			t.Fatalf("icmp outcome diverged at %d", i)
		}
		if e1.RouteSalt("r1", now) != e2.RouteSalt("r1", now) {
			t.Fatalf("route salt diverged at %d", i)
		}
	}
}

func TestSeedIndependencePerImpairment(t *testing.T) {
	// Registering an extra impairment must not perturb the stream of the
	// first one: both engines must agree on the first impairment's drops.
	a := NewEngine(5).AddGlobal(UniformLoss(0.5))
	b := NewEngine(5).AddGlobal(UniformLoss(0.5)).AddLink("x", "y", UniformLoss(0.5))
	for i := 0; i < 1000; i++ {
		if a.Global(0).Drop != b.Global(0).Drop {
			t.Fatal("extra registration perturbed earlier impairment's stream")
		}
		b.Cross("x", "y", 0) // interleave consults; streams must stay independent
	}
}

func TestProfileStrings(t *testing.T) {
	for _, imp := range []Impairment{
		UniformLoss(0.05),
		GilbertElliott(0.05, 0.3, 0, 0.8),
		Blackhole(time.Second, time.Minute),
		Duplication(0.1),
	} {
		if imp.String() == "" {
			t.Errorf("%T has empty String()", imp)
		}
	}
}
