package ml

import (
	"fmt"
	"strings"
)

// ConfusionMatrix accumulates classifier predictions against truth.
type ConfusionMatrix struct {
	// Classes are the label names, indexing both dimensions.
	Classes []string
	// Counts[t][p] counts samples of true class t predicted as p.
	Counts [][]int
}

// NewConfusionMatrix returns an empty matrix over the given classes.
func NewConfusionMatrix(classes []string) *ConfusionMatrix {
	m := &ConfusionMatrix{Classes: classes}
	m.Counts = make([][]int, len(classes))
	for i := range m.Counts {
		m.Counts[i] = make([]int, len(classes))
	}
	return m
}

// Add records one prediction.
func (m *ConfusionMatrix) Add(trueClass, predicted int) {
	if trueClass >= 0 && trueClass < len(m.Classes) && predicted >= 0 && predicted < len(m.Classes) {
		m.Counts[trueClass][predicted]++
	}
}

// Accuracy is the overall fraction of correct predictions.
func (m *ConfusionMatrix) Accuracy() float64 {
	correct, total := 0, 0
	for t := range m.Counts {
		for p, n := range m.Counts[t] {
			total += n
			if t == p {
				correct += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// Precision returns TP/(TP+FP) for a class (1 when the class was never
// predicted).
func (m *ConfusionMatrix) Precision(class int) float64 {
	tp := m.Counts[class][class]
	predicted := 0
	for t := range m.Counts {
		predicted += m.Counts[t][class]
	}
	if predicted == 0 {
		return 1
	}
	return float64(tp) / float64(predicted)
}

// Recall returns TP/(TP+FN) for a class (1 when the class never occurred).
func (m *ConfusionMatrix) Recall(class int) float64 {
	tp := m.Counts[class][class]
	actual := 0
	for _, n := range m.Counts[class] {
		actual += n
	}
	if actual == 0 {
		return 1
	}
	return float64(tp) / float64(actual)
}

// F1 returns the harmonic mean of precision and recall for a class.
func (m *ConfusionMatrix) F1(class int) float64 {
	p, r := m.Precision(class), m.Recall(class)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MacroF1 averages F1 across classes that occur.
func (m *ConfusionMatrix) MacroF1() float64 {
	sum, n := 0.0, 0
	for c := range m.Classes {
		actual := 0
		for _, v := range m.Counts[c] {
			actual += v
		}
		if actual == 0 {
			continue
		}
		sum += m.F1(c)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// String renders the matrix with per-class precision/recall.
func (m *ConfusionMatrix) String() string {
	var b strings.Builder
	width := 14
	fmt.Fprintf(&b, "%-*s", width, "true\\pred")
	for _, c := range m.Classes {
		fmt.Fprintf(&b, " %*s", width, truncateLabel(c, width))
	}
	b.WriteString("   prec  recall\n")
	for t, row := range m.Counts {
		fmt.Fprintf(&b, "%-*s", width, truncateLabel(m.Classes[t], width))
		for _, n := range row {
			fmt.Fprintf(&b, " %*d", width, n)
		}
		fmt.Fprintf(&b, "  %5.2f   %5.2f\n", m.Precision(t), m.Recall(t))
	}
	fmt.Fprintf(&b, "accuracy %.2f, macro-F1 %.2f\n", m.Accuracy(), m.MacroF1())
	return b.String()
}

func truncateLabel(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// CrossValidateConfusion runs k-fold CV like CrossValidate but accumulates
// a confusion matrix over the held-out predictions.
func CrossValidateConfusion(d *Dataset, classes []string, cfg ForestConfig, k, repeats int) *ConfusionMatrix {
	cm := NewConfusionMatrix(classes)
	n := len(d.X)
	for rep := 0; rep < repeats; rep++ {
		rng := newPermRng(cfg.Seed + int64(rep))
		perm := rng.Perm(n)
		for fold := 0; fold < k; fold++ {
			var trainIdx, testIdx []int
			for i, p := range perm {
				if i%k == fold {
					testIdx = append(testIdx, p)
				} else {
					trainIdx = append(trainIdx, p)
				}
			}
			if len(trainIdx) == 0 || len(testIdx) == 0 {
				continue
			}
			sub := &Dataset{}
			for _, i := range trainIdx {
				sub.X = append(sub.X, d.X[i])
				sub.Y = append(sub.Y, d.Y[i])
			}
			foldCfg := cfg
			foldCfg.Seed = cfg.Seed + int64(rep*1000+fold)
			forest := FitForest(sub, foldCfg)
			for _, i := range testIdx {
				cm.Add(d.Y[i], forest.Predict(d.X[i]))
			}
		}
	}
	return cm
}
