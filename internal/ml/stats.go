package ml

import (
	"math"
	"sort"
)

// ranks assigns average ranks to values (ties share the mean rank), the
// standard preprocessing for Spearman correlation.
func ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// pearson computes the Pearson correlation coefficient.
func pearson(x, y []float64) float64 {
	n := float64(len(x))
	if n == 0 {
		return 0
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Spearman computes Spearman's rank correlation coefficient r_s and its
// two-sided p-value (t-distribution approximation, df = n-2), the measure
// §7.4 uses for pairwise device-feature similarity.
func Spearman(x, y []float64) (rs, p float64) {
	if len(x) != len(y) || len(x) < 3 {
		return 0, 1
	}
	rs = pearson(ranks(x), ranks(y))
	n := float64(len(x))
	if math.Abs(rs) >= 1 {
		return rs, 0
	}
	t := rs * math.Sqrt((n-2)/(1-rs*rs))
	p = 2 * studentTTail(math.Abs(t), n-2)
	if p > 1 {
		p = 1
	}
	return rs, p
}

// studentTTail returns P(T > t) for Student's t with df degrees of
// freedom, via the regularized incomplete beta function.
func studentTTail(t, df float64) float64 {
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes style).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	ln := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betacf evaluates the continued fraction for the incomplete beta function.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 200
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// ImputeMedian replaces NaN entries with the per-column median of the
// non-missing values (§7.2: "We impute missing features in the data via
// taking the median of other samples"). The matrix is modified in place
// and returned.
func ImputeMedian(x [][]float64) [][]float64 {
	if len(x) == 0 {
		return x
	}
	cols := len(x[0])
	for c := 0; c < cols; c++ {
		var present []float64
		for r := range x {
			if !math.IsNaN(x[r][c]) {
				present = append(present, x[r][c])
			}
		}
		med := 0.0
		if len(present) > 0 {
			sort.Float64s(present)
			mid := len(present) / 2
			if len(present)%2 == 1 {
				med = present[mid]
			} else {
				med = (present[mid-1] + present[mid]) / 2
			}
		}
		for r := range x {
			if math.IsNaN(x[r][c]) {
				x[r][c] = med
			}
		}
	}
	return x
}

// Standardize z-scores each column in place (mean 0, unit variance),
// skipping NaN entries and leaving constant columns at zero. Distance-based
// methods (DBSCAN, k-distance ε) need this: raw feature magnitudes differ
// by orders of magnitude (evasion rates in [0,1] vs IP ID values).
func Standardize(x [][]float64) [][]float64 {
	if len(x) == 0 {
		return x
	}
	cols := len(x[0])
	for c := 0; c < cols; c++ {
		var sum, n float64
		for r := range x {
			if !math.IsNaN(x[r][c]) {
				sum += x[r][c]
				n++
			}
		}
		if n == 0 {
			continue
		}
		mean := sum / n
		var varsum float64
		for r := range x {
			if !math.IsNaN(x[r][c]) {
				d := x[r][c] - mean
				varsum += d * d
			}
		}
		std := math.Sqrt(varsum / n)
		for r := range x {
			if math.IsNaN(x[r][c]) {
				continue
			}
			if std == 0 {
				x[r][c] = 0
			} else {
				x[r][c] = (x[r][c] - mean) / std
			}
		}
	}
	return x
}

// TopKIndices returns the indices of the k largest values, descending
// (used to pick "the top 10 features that perform best", §7.3).
func TopKIndices(values []float64, k int) []int {
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return values[idx[a]] > values[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
