package ml

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// twoClassData builds a separable dataset: feature 0 decides the class,
// feature 1 is noise.
func twoClassData(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{}
	for i := 0; i < n; i++ {
		y := i % 2
		x0 := float64(y) + rng.Float64()*0.4 - 0.2
		x1 := rng.Float64()
		d.X = append(d.X, []float64{x0, x1})
		d.Y = append(d.Y, y)
	}
	return d
}

func TestTreeLearnsSeparableData(t *testing.T) {
	d := twoClassData(100, 1)
	tree := FitTree(d, nil, TreeConfig{})
	correct := 0
	for i := range d.X {
		if tree.Predict(d.X[i]) == d.Y[i] {
			correct++
		}
	}
	if correct < 98 {
		t.Errorf("training accuracy = %d/100", correct)
	}
}

func TestTreeImportanceFavorsSignalFeature(t *testing.T) {
	d := twoClassData(200, 2)
	tree := FitTree(d, nil, TreeConfig{})
	imp := tree.Importance()
	if imp[0] < imp[1] || imp[0] < 0.8 {
		t.Errorf("importance = %v, want feature 0 dominant", imp)
	}
	sum := imp[0] + imp[1]
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importance sum = %f, want 1", sum)
	}
}

func TestTreePureLeaf(t *testing.T) {
	d := &Dataset{X: [][]float64{{1}, {2}, {3}}, Y: []int{7, 7, 7}}
	tree := FitTree(d, nil, TreeConfig{})
	if got := tree.Predict([]float64{99}); got != 7 {
		t.Errorf("pure-leaf prediction = %d", got)
	}
}

func TestTreeHandlesNaN(t *testing.T) {
	nan := math.NaN()
	d := &Dataset{
		X: [][]float64{{0}, {0.1}, {nan}, {1}, {1.1}, {nan}},
		Y: []int{0, 0, 0, 1, 1, 1},
	}
	tree := FitTree(d, nil, TreeConfig{})
	if got := tree.Predict([]float64{0.05}); got != 0 {
		t.Errorf("Predict(0.05) = %d", got)
	}
	// NaN routes right without panicking.
	tree.Predict([]float64{nan})
}

func TestForestAccuracyAndImportance(t *testing.T) {
	d := twoClassData(120, 3)
	f := FitForest(d, ForestConfig{NumTrees: 30, Seed: 7})
	if acc := f.Accuracy(d, nil); acc < 0.95 {
		t.Errorf("forest training accuracy = %.2f", acc)
	}
	imp := f.Importance()
	if imp[0] < imp[1] {
		t.Errorf("forest importance = %v, want feature 0 dominant", imp)
	}
}

func TestForestDeterministicWithSeed(t *testing.T) {
	d := twoClassData(60, 4)
	f1 := FitForest(d, ForestConfig{NumTrees: 10, Seed: 42})
	f2 := FitForest(d, ForestConfig{NumTrees: 10, Seed: 42})
	for i := range d.X {
		if f1.Predict(d.X[i]) != f2.Predict(d.X[i]) {
			t.Fatal("same seed produced different forests")
		}
	}
}

func TestCrossValidate(t *testing.T) {
	d := twoClassData(100, 5)
	accs, imp := CrossValidate(d, ForestConfig{NumTrees: 15, Seed: 1}, 5, 3)
	if len(accs) != 15 {
		t.Fatalf("fold accuracies = %d, want 15 (3×5-fold, §7.2)", len(accs))
	}
	mean := 0.0
	for _, a := range accs {
		mean += a
	}
	mean /= float64(len(accs))
	if mean < 0.9 {
		t.Errorf("CV accuracy = %.2f", mean)
	}
	if imp[0] < imp[1] {
		t.Errorf("CV importance = %v", imp)
	}
}

func TestDBSCANTwoBlobs(t *testing.T) {
	var pts [][]float64
	for i := 0; i < 10; i++ {
		pts = append(pts, []float64{float64(i) * 0.01, 0})
		pts = append(pts, []float64{5 + float64(i)*0.01, 0})
	}
	pts = append(pts, []float64{100, 100}) // outlier
	res := DBSCAN(pts, 0.5, 3)
	if res.NumClusters != 2 {
		t.Fatalf("clusters = %d, want 2", res.NumClusters)
	}
	if res.Labels[len(pts)-1] != Noise {
		t.Error("outlier not labeled noise")
	}
	sizes := res.ClusterSizes()
	if sizes[0] != 10 || sizes[1] != 10 {
		t.Errorf("cluster sizes = %v", sizes)
	}
	if got := len(res.Members(0)); got != 10 {
		t.Errorf("Members(0) = %d", got)
	}
}

func TestDBSCANAllNoise(t *testing.T) {
	pts := [][]float64{{0, 0}, {10, 10}, {20, 20}}
	res := DBSCAN(pts, 1, 2)
	if res.NumClusters != 0 {
		t.Errorf("clusters = %d, want 0", res.NumClusters)
	}
}

func TestKDistanceEpsilon(t *testing.T) {
	pts := [][]float64{{0}, {1}, {2}, {3}}
	// 1-NN distances are all 1.
	if eps := KDistanceEpsilon(pts, 1); math.Abs(eps-1) > 1e-9 {
		t.Errorf("eps = %f, want 1", eps)
	}
	if eps := KDistanceEpsilon(pts[:1], 1); eps != 0 {
		t.Errorf("degenerate eps = %f", eps)
	}
}

func TestEuclideanSkipsNaN(t *testing.T) {
	nan := math.NaN()
	d := euclidean([]float64{1, nan, 3}, []float64{1, 5, 3})
	if d != 0 {
		t.Errorf("distance with NaN dim = %f, want 0", d)
	}
}

func TestSpearmanPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := []float64{10, 20, 30, 40, 50, 60, 70, 80}
	rs, p := Spearman(x, y)
	if math.Abs(rs-1) > 1e-9 {
		t.Errorf("rs = %f, want 1", rs)
	}
	if p > 1e-6 {
		t.Errorf("p = %g, want ~0", p)
	}
}

func TestSpearmanInverse(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{5, 4, 3, 2, 1}
	rs, _ := Spearman(x, y)
	if math.Abs(rs+1) > 1e-9 {
		t.Errorf("rs = %f, want -1", rs)
	}
}

func TestSpearmanUncorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
		y[i] = rng.Float64()
	}
	rs, p := Spearman(x, y)
	if math.Abs(rs) > 0.2 {
		t.Errorf("rs = %f, want ≈0", rs)
	}
	if p < 0.01 {
		t.Errorf("p = %g, want non-significant", p)
	}
}

func TestSpearmanTies(t *testing.T) {
	x := []float64{1, 1, 2, 2, 3, 3}
	y := []float64{1, 1, 2, 2, 3, 3}
	rs, _ := Spearman(x, y)
	if math.Abs(rs-1) > 1e-9 {
		t.Errorf("rs with ties = %f, want 1", rs)
	}
}

func TestSpearmanDegenerate(t *testing.T) {
	if rs, p := Spearman([]float64{1, 2}, []float64{1, 2}); rs != 0 || p != 1 {
		t.Errorf("n<3: rs=%f p=%f, want 0,1", rs, p)
	}
}

func TestStudentTTailSanity(t *testing.T) {
	// P(T > 0) = 0.5 for any df.
	if got := studentTTail(0, 10); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("tail(0) = %f", got)
	}
	// Known value: t=2.228, df=10 → one-sided tail ≈ 0.025.
	if got := studentTTail(2.228, 10); math.Abs(got-0.025) > 0.002 {
		t.Errorf("tail(2.228, 10) = %f, want ≈0.025", got)
	}
	// Monotone decreasing in t.
	if studentTTail(1, 5) <= studentTTail(2, 5) {
		t.Error("tail not decreasing")
	}
}

func TestImputeMedian(t *testing.T) {
	nan := math.NaN()
	x := [][]float64{
		{1, nan},
		{3, 10},
		{nan, 20},
		{5, nan},
	}
	ImputeMedian(x)
	if x[2][0] != 3 { // median of 1,3,5
		t.Errorf("imputed [2][0] = %f, want 3", x[2][0])
	}
	if x[0][1] != 15 { // median of 10,20
		t.Errorf("imputed [0][1] = %f, want 15", x[0][1])
	}
	for r := range x {
		for c := range x[r] {
			if math.IsNaN(x[r][c]) {
				t.Fatalf("NaN left at [%d][%d]", r, c)
			}
		}
	}
}

func TestImputeAllMissingColumn(t *testing.T) {
	nan := math.NaN()
	x := [][]float64{{nan}, {nan}}
	ImputeMedian(x)
	if x[0][0] != 0 || x[1][0] != 0 {
		t.Errorf("all-missing column imputed to %v, want zeros", x)
	}
}

func TestTopKIndices(t *testing.T) {
	vals := []float64{0.1, 0.9, 0.5, 0.7}
	top := TopKIndices(vals, 2)
	if len(top) != 2 || top[0] != 1 || top[1] != 3 {
		t.Errorf("TopKIndices = %v", top)
	}
	if got := TopKIndices(vals, 10); len(got) != 4 {
		t.Errorf("k>n: %v", got)
	}
}

func TestQuickRanksArePermutationInvariantSum(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		clean := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		r := ranks(clean)
		sum := 0.0
		for _, v := range r {
			sum += v
		}
		n := float64(len(clean))
		return math.Abs(sum-n*(n+1)/2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickSpearmanBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(n uint8) bool {
		m := int(n%50) + 3
		x := make([]float64, m)
		y := make([]float64, m)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		rs, p := Spearman(x, y)
		return rs >= -1 && rs <= 1 && p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConfusionMatrixBasics(t *testing.T) {
	cm := NewConfusionMatrix([]string{"a", "b"})
	cm.Add(0, 0)
	cm.Add(0, 0)
	cm.Add(0, 1)
	cm.Add(1, 1)
	if got := cm.Accuracy(); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("accuracy = %f", got)
	}
	if got := cm.Precision(1); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("precision(b) = %f", got)
	}
	if got := cm.Recall(0); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("recall(a) = %f", got)
	}
	if got := cm.Recall(1); got != 1 {
		t.Errorf("recall(b) = %f", got)
	}
	if f1 := cm.F1(0); f1 <= 0 || f1 > 1 {
		t.Errorf("F1(a) = %f", f1)
	}
	if mf := cm.MacroF1(); mf <= 0 || mf > 1 {
		t.Errorf("macro-F1 = %f", mf)
	}
	out := cm.String()
	if !strings.Contains(out, "accuracy 0.75") {
		t.Errorf("render: %s", out)
	}
}

func TestConfusionMatrixEdgeCases(t *testing.T) {
	cm := NewConfusionMatrix([]string{"x", "never"})
	cm.Add(0, 0)
	if cm.Precision(1) != 1 || cm.Recall(1) != 1 {
		t.Error("absent class should default precision/recall to 1")
	}
	cm.Add(-1, 5) // out of range ignored
	if cm.Accuracy() != 1 {
		t.Error("out-of-range Add should be ignored")
	}
	empty := NewConfusionMatrix(nil)
	if empty.Accuracy() != 0 || empty.MacroF1() != 0 {
		t.Error("empty matrix metrics should be 0")
	}
}

func TestCrossValidateConfusion(t *testing.T) {
	d := twoClassData(100, 8)
	cm := CrossValidateConfusion(d, []string{"zero", "one"}, ForestConfig{NumTrees: 15, Seed: 1}, 5, 2)
	if cm.Accuracy() < 0.9 {
		t.Errorf("CV confusion accuracy = %.2f", cm.Accuracy())
	}
	total := 0
	for _, row := range cm.Counts {
		for _, n := range row {
			total += n
		}
	}
	if total != 200 { // 100 samples × 2 repeats
		t.Errorf("total predictions = %d, want 200", total)
	}
}

func TestFitForestOOB(t *testing.T) {
	d := twoClassData(150, 12)
	f, oob := FitForestOOB(d, ForestConfig{NumTrees: 40, Seed: 5})
	if len(f.Trees) != 40 {
		t.Fatalf("trees = %d", len(f.Trees))
	}
	if oob < 0.85 || oob > 1 {
		t.Errorf("OOB accuracy = %.2f, want high on separable data", oob)
	}
	// OOB should roughly agree with CV accuracy.
	accs, _ := CrossValidate(d, ForestConfig{NumTrees: 40, Seed: 5}, 5, 1)
	mean := 0.0
	for _, a := range accs {
		mean += a
	}
	mean /= float64(len(accs))
	if math.Abs(oob-mean) > 0.15 {
		t.Errorf("OOB %.2f far from CV %.2f", oob, mean)
	}
}
