package ml

import (
	"math"
	"sort"
)

// DBSCANResult holds the cluster assignment per point: 0..k-1 are cluster
// ids, Noise (-1) marks outliers.
type DBSCANResult struct {
	Labels      []int
	NumClusters int
}

// Noise is the DBSCAN label for points in no cluster.
const Noise = -1

// euclidean computes the distance between two vectors, skipping dimensions
// where either value is NaN (missing-feature tolerant).
func euclidean(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
			continue
		}
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// DBSCAN clusters points with density parameters eps and minPts (§7.3:
// "We use DBSCAN clustering, which uses a density metric to determine the
// number of clusters in the data rather than a pre-determined number").
func DBSCAN(points [][]float64, eps float64, minPts int) DBSCANResult {
	n := len(points)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	visited := make([]bool, n)
	neighbors := func(i int) []int {
		var out []int
		for j := 0; j < n; j++ {
			if euclidean(points[i], points[j]) <= eps {
				out = append(out, j)
			}
		}
		return out
	}
	cluster := 0
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		nbrs := neighbors(i)
		if len(nbrs) < minPts {
			continue // noise (may be claimed by a cluster later)
		}
		labels[i] = cluster
		queue := append([]int(nil), nbrs...)
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			if labels[j] == Noise {
				labels[j] = cluster // border point
			}
			if visited[j] {
				continue
			}
			visited[j] = true
			labels[j] = cluster
			jn := neighbors(j)
			if len(jn) >= minPts {
				queue = append(queue, jn...)
			}
		}
		cluster++
	}
	return DBSCANResult{Labels: labels, NumClusters: cluster}
}

// KDistanceEpsilon estimates the DBSCAN ε by averaging each point's
// distance to its k nearest neighbors — the technique the paper borrows
// from prior literature to pick ε (§7.3).
func KDistanceEpsilon(points [][]float64, k int) float64 {
	n := len(points)
	if n < 2 || k < 1 {
		return 0
	}
	total := 0.0
	count := 0
	for i := 0; i < n; i++ {
		dists := make([]float64, 0, n-1)
		for j := 0; j < n; j++ {
			if i != j {
				dists = append(dists, euclidean(points[i], points[j]))
			}
		}
		sort.Float64s(dists)
		kk := k
		if kk > len(dists) {
			kk = len(dists)
		}
		for _, d := range dists[:kk] {
			total += d
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// ClusterSizes returns the member count per cluster id.
func (r DBSCANResult) ClusterSizes() map[int]int {
	sizes := map[int]int{}
	for _, l := range r.Labels {
		if l != Noise {
			sizes[l]++
		}
	}
	return sizes
}

// Members returns the point indices in a cluster.
func (r DBSCANResult) Members(cluster int) []int {
	var out []int
	for i, l := range r.Labels {
		if l == cluster {
			out = append(out, i)
		}
	}
	return out
}
