package ml

import (
	"math"
	"math/rand"
)

// Forest is a random forest classifier: bagged CART trees with random
// feature subspaces, exposing MDI feature importance the way §7.2 uses it
// ("We measure the importance of each feature using the mean-decrease in
// impurity (MDI) calculated by the random-forest classifier").
type Forest struct {
	Trees []*Tree
	seed  int64
}

// ForestConfig parameterizes training.
type ForestConfig struct {
	NumTrees int // default 100
	MaxDepth int // default unbounded
	// MaxFeatures per split; default sqrt(num features).
	MaxFeatures int
	MinLeafSize int
	Seed        int64
}

func (c ForestConfig) withDefaults(numFeatures int) ForestConfig {
	if c.NumTrees == 0 {
		c.NumTrees = 100
	}
	if c.MaxFeatures == 0 {
		c.MaxFeatures = int(math.Ceil(math.Sqrt(float64(numFeatures))))
	}
	if c.MinLeafSize == 0 {
		c.MinLeafSize = 1
	}
	return c
}

// FitForest trains a forest on the dataset.
func FitForest(d *Dataset, cfg ForestConfig) *Forest {
	cfg = cfg.withDefaults(d.NumFeatures())
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Forest{seed: cfg.Seed}
	n := len(d.X)
	for t := 0; t < cfg.NumTrees; t++ {
		// Bootstrap sample.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		tree := FitTree(d, idx, TreeConfig{
			MaxDepth:    cfg.MaxDepth,
			MinLeafSize: cfg.MinLeafSize,
			MaxFeatures: cfg.MaxFeatures,
			Rng:         rng,
		})
		f.Trees = append(f.Trees, tree)
	}
	return f
}

// Predict classifies one sample by majority vote.
func (f *Forest) Predict(x []float64) int {
	votes := map[int]int{}
	for _, t := range f.Trees {
		votes[t.Predict(x)]++
	}
	return majority(votes)
}

// Importance returns the forest's MDI per feature: the mean of the trees'
// normalized importances.
func (f *Forest) Importance() []float64 {
	if len(f.Trees) == 0 {
		return nil
	}
	out := make([]float64, len(f.Trees[0].importance))
	for _, t := range f.Trees {
		for i, v := range t.Importance() {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(f.Trees))
	}
	return out
}

// Accuracy scores the forest on a labeled set.
func (f *Forest) Accuracy(d *Dataset, idx []int) float64 {
	if idx == nil {
		idx = make([]int, len(d.X))
		for i := range idx {
			idx[i] = i
		}
	}
	if len(idx) == 0 {
		return 0
	}
	correct := 0
	for _, i := range idx {
		if f.Predict(d.X[i]) == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(idx))
}

// CrossValidate runs k-fold cross-validation `repeats` times (the paper
// trains "three times using 5-fold cross-validation, for a total of 15
// repetitions") and returns the per-fold accuracies and the MDI averaged
// over every trained forest.
func CrossValidate(d *Dataset, cfg ForestConfig, k, repeats int) (accuracies []float64, importance []float64) {
	n := len(d.X)
	importance = make([]float64, d.NumFeatures())
	forests := 0
	for rep := 0; rep < repeats; rep++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)))
		perm := rng.Perm(n)
		for fold := 0; fold < k; fold++ {
			var trainIdx, testIdx []int
			for i, p := range perm {
				if i%k == fold {
					testIdx = append(testIdx, p)
				} else {
					trainIdx = append(trainIdx, p)
				}
			}
			if len(trainIdx) == 0 || len(testIdx) == 0 {
				continue
			}
			sub := &Dataset{}
			for _, i := range trainIdx {
				sub.X = append(sub.X, d.X[i])
				sub.Y = append(sub.Y, d.Y[i])
			}
			foldCfg := cfg
			foldCfg.Seed = cfg.Seed + int64(rep*1000+fold)
			forest := FitForest(sub, foldCfg)
			accuracies = append(accuracies, forest.Accuracy(d, testIdx))
			for i, v := range forest.Importance() {
				importance[i] += v
			}
			forests++
		}
	}
	if forests > 0 {
		for i := range importance {
			importance[i] /= float64(forests)
		}
	}
	return accuracies, importance
}

// newPermRng returns a seeded generator for fold permutation (kept in one
// place so CrossValidate and CrossValidateConfusion shuffle identically).
func newPermRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// FitForestOOB trains a forest and additionally returns the out-of-bag
// accuracy estimate: each sample is scored only by the trees whose
// bootstrap missed it, approximating held-out accuracy without a split.
func FitForestOOB(d *Dataset, cfg ForestConfig) (*Forest, float64) {
	cfg = cfg.withDefaults(d.NumFeatures())
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Forest{seed: cfg.Seed}
	n := len(d.X)
	oobVotes := make([]map[int]int, n)
	for i := range oobVotes {
		oobVotes[i] = map[int]int{}
	}
	for t := 0; t < cfg.NumTrees; t++ {
		idx := make([]int, n)
		inBag := make([]bool, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
			inBag[idx[i]] = true
		}
		tree := FitTree(d, idx, TreeConfig{
			MaxDepth:    cfg.MaxDepth,
			MinLeafSize: cfg.MinLeafSize,
			MaxFeatures: cfg.MaxFeatures,
			Rng:         rng,
		})
		f.Trees = append(f.Trees, tree)
		for i := 0; i < n; i++ {
			if !inBag[i] {
				oobVotes[i][tree.Predict(d.X[i])]++
			}
		}
	}
	correct, scored := 0, 0
	for i, votes := range oobVotes {
		if len(votes) == 0 {
			continue
		}
		scored++
		if majority(votes) == d.Y[i] {
			correct++
		}
	}
	oob := 0.0
	if scored > 0 {
		oob = float64(correct) / float64(scored)
	}
	return f, oob
}
