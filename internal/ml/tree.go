// Package ml implements the learning primitives the clustering pipeline
// (§7 of the paper) needs, from scratch on the standard library: CART
// decision trees and random forests with mean-decrease-in-impurity (MDI)
// feature importance, k-fold cross-validation, DBSCAN with k-distance ε
// estimation, Spearman rank correlation with p-values, and median
// imputation. Missing values are represented as NaN throughout.
package ml

import (
	"math"
	"math/rand"
	"sort"
)

// Dataset is a feature matrix with integer class labels. Rows are samples.
type Dataset struct {
	X [][]float64
	Y []int
}

// NumFeatures returns the width of the feature matrix.
func (d *Dataset) NumFeatures() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// treeNode is one node of a CART tree.
type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	// prediction is the majority class at a leaf.
	prediction int
	leaf       bool
}

// Tree is a CART classification tree trained with Gini impurity.
type Tree struct {
	root *treeNode
	// importance accumulates the weighted impurity decrease per feature
	// (unnormalized MDI).
	importance []float64
	minLeaf    int
	maxDepth   int
}

// TreeConfig bounds tree growth.
type TreeConfig struct {
	MaxDepth    int // 0 = unbounded
	MinLeafSize int // minimum samples per leaf; 0 = 1
	// MaxFeatures limits how many features are considered per split
	// (random subspace); 0 = all.
	MaxFeatures int
	// Rng drives feature subsampling; nil = deterministic full scan.
	Rng *rand.Rand
}

// gini computes the Gini impurity of a label multiset.
func gini(counts map[int]int, total int) float64 {
	if total == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range counts {
		p := float64(c) / float64(total)
		sum += p * p
	}
	return 1 - sum
}

func countLabels(y []int, idx []int) map[int]int {
	counts := make(map[int]int)
	for _, i := range idx {
		counts[y[i]]++
	}
	return counts
}

func majority(counts map[int]int) int {
	best, bestC := 0, -1
	// Deterministic tie-break by class id.
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		if counts[k] > bestC {
			best, bestC = k, counts[k]
		}
	}
	return best
}

// FitTree trains a CART tree on the dataset restricted to idx (nil = all
// rows).
func FitTree(d *Dataset, idx []int, cfg TreeConfig) *Tree {
	if idx == nil {
		idx = make([]int, len(d.X))
		for i := range idx {
			idx[i] = i
		}
	}
	t := &Tree{
		importance: make([]float64, d.NumFeatures()),
		minLeaf:    max(1, cfg.MinLeafSize),
		maxDepth:   cfg.MaxDepth,
	}
	t.root = t.grow(d, idx, 0, cfg)
	return t
}

// grow recursively builds the tree.
func (t *Tree) grow(d *Dataset, idx []int, depth int, cfg TreeConfig) *treeNode {
	counts := countLabels(d.Y, idx)
	node := &treeNode{prediction: majority(counts), leaf: true}
	if len(counts) <= 1 || len(idx) < 2*t.minLeaf {
		return node
	}
	if t.maxDepth > 0 && depth >= t.maxDepth {
		return node
	}
	feat, thresh, gain, ok := t.bestSplit(d, idx, counts, cfg)
	if !ok || gain <= 1e-12 {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if val := d.X[i][feat]; !math.IsNaN(val) && val <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.minLeaf || len(right) < t.minLeaf {
		return node
	}
	t.importance[feat] += gain * float64(len(idx))
	node.leaf = false
	node.feature = feat
	node.threshold = thresh
	node.left = t.grow(d, left, depth+1, cfg)
	node.right = t.grow(d, right, depth+1, cfg)
	return node
}

// bestSplit scans candidate features for the best Gini gain.
func (t *Tree) bestSplit(d *Dataset, idx []int, parentCounts map[int]int, cfg TreeConfig) (feat int, thresh, gain float64, ok bool) {
	n := len(idx)
	parentGini := gini(parentCounts, n)
	features := t.candidateFeatures(d.NumFeatures(), cfg)
	bestGain := 0.0
	for _, f := range features {
		// Sort sample indices by feature value (NaN treated as +inf so
		// missing values fall to the right branch).
		order := append([]int(nil), idx...)
		sort.Slice(order, func(a, b int) bool {
			va, vb := d.X[order[a]][f], d.X[order[b]][f]
			if math.IsNaN(va) {
				return false
			}
			if math.IsNaN(vb) {
				return true
			}
			return va < vb
		})
		leftCounts := make(map[int]int)
		rightCounts := make(map[int]int)
		for k, v := range countLabels(d.Y, idx) {
			rightCounts[k] = v
		}
		for i := 0; i < n-1; i++ {
			y := d.Y[order[i]]
			leftCounts[y]++
			rightCounts[y]--
			va, vb := d.X[order[i]][f], d.X[order[i+1]][f]
			if math.IsNaN(va) || math.IsNaN(vb) || va == vb {
				continue
			}
			nl, nr := i+1, n-i-1
			g := parentGini -
				(float64(nl)/float64(n))*gini(leftCounts, nl) -
				(float64(nr)/float64(n))*gini(rightCounts, nr)
			if g > bestGain {
				bestGain = g
				feat = f
				thresh = (va + vb) / 2
				ok = true
			}
		}
	}
	return feat, thresh, bestGain, ok
}

// candidateFeatures selects the feature subset for a split.
func (t *Tree) candidateFeatures(total int, cfg TreeConfig) []int {
	all := make([]int, total)
	for i := range all {
		all[i] = i
	}
	if cfg.MaxFeatures <= 0 || cfg.MaxFeatures >= total || cfg.Rng == nil {
		return all
	}
	cfg.Rng.Shuffle(total, func(i, j int) { all[i], all[j] = all[j], all[i] })
	sub := all[:cfg.MaxFeatures]
	sort.Ints(sub)
	return sub
}

// Predict classifies one sample.
func (t *Tree) Predict(x []float64) int {
	node := t.root
	for !node.leaf {
		v := x[node.feature]
		if !math.IsNaN(v) && v <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.prediction
}

// Importance returns the tree's normalized MDI per feature (sums to 1
// when any split occurred).
func (t *Tree) Importance() []float64 {
	out := make([]float64, len(t.importance))
	total := 0.0
	for _, v := range t.importance {
		total += v
	}
	if total == 0 {
		return out
	}
	for i, v := range t.importance {
		out[i] = v / total
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
