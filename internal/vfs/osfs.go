package vfs

import (
	"io/fs"
	"os"
	"sort"
)

// osFS is the passthrough implementation over package os.
type osFS struct{}

// OS returns the real-filesystem implementation every production code
// path uses.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Open(name string) (File, error)   { return os.Open(name) }
func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error {
	return os.Truncate(name, size)
}
func (osFS) MkdirAll(dir string, perm fs.FileMode) error { return os.MkdirAll(dir, perm) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
