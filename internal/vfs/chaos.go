package vfs

// Chaos is an in-memory filesystem with a seeded, deterministic fault
// model, built to answer one question: does the persistence layer keep
// its promises when the storage under it misbehaves? It can fail any
// single operation (EIO, ENOSPC), tear a write short, lose a rename's
// durability, and — the centerpiece — simulate a power cut: freeze the
// virtual disk at its last-synced state (plus seeded torn tails of
// unsynced data), then "reboot" so recovery code can replay against
// exactly what a real crash would have left behind.
//
// The durability model mirrors a journaling filesystem in ordered mode
// (the contract the fsync+rename recipe relies on in practice):
//
//   - File CONTENT is durable up to the last successful Sync of its
//     handle. At crash time, a seeded prefix of the unsynced suffix may
//     additionally survive — the torn tail a kill -9 mid-append leaves.
//   - Metadata operations (create, rename, remove) enter a pending
//     journal in order. ANY successful Sync commits the whole pending
//     journal — one sequential journal per filesystem, exactly like
//     ext4 — and at crash time a seeded PREFIX of the still-pending
//     journal commits, modeling a background journal flush racing the
//     power cut.
//   - A rename marked lost (LoseRenameOp) is passed over by ordinary
//     file Syncs and never commits at crash time: the injected
//     "rename-without-durability" fault. Only an explicit SyncDir — the
//     fsync-the-parent-directory defense — makes it durable.
//
// Every operation — opens, reads, writes, syncs, renames — increments a
// global operation counter; the crash-matrix harness enumerates those
// indices as injection points. All behavior derives from the seed: the
// same seed and the same operation sequence produce the same faults,
// the same torn tails, and the same post-crash disk, byte for byte.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Injected and crash errors. ErrCrashed is what every operation returns
// once the virtual power is cut (and what stale pre-reboot handles
// return forever).
var (
	ErrCrashed  = errors.New("chaosfs: simulated crash (virtual power cut)")
	ErrIO       = errors.New("chaosfs: injected I/O error (EIO)")
	ErrDiskFull = errors.New("chaosfs: injected disk full (ENOSPC)")
)

// chaosNode is one file's storage: live content (what reads observe) and
// durable content (what survives a crash, last successful Sync).
type chaosNode struct {
	data    []byte
	durable []byte
}

// metaOp is one pending metadata-journal entry.
type metaOp struct {
	kind   string // "create" | "rename" | "remove"
	name   string // create/remove target, rename new path
	old    string // rename old path
	node   *chaosNode
	doomed bool // a LoseRenameOp victim: only SyncDir commits it
}

// fault is a scheduled single-operation fault.
type fault struct {
	err        error
	short      bool // tear the write instead of failing it outright
	loseRename bool // rename applies live but never becomes durable
}

// Chaos implements FS. The zero value is not usable; construct with
// NewChaos.
type Chaos struct {
	mu      sync.Mutex
	rng     *rand.Rand
	live    map[string]*chaosNode
	durable map[string]*chaosNode // durable namespace: name -> node
	dirs    map[string]bool
	pending []metaOp
	faults  map[int]fault
	ops     int
	opLog   []string
	crashAt int
	crashed bool
	gen     int // bumped on Reboot; stale handles are fenced off
}

// NewChaos returns an empty chaos filesystem whose every nondeterministic
// choice — torn-tail lengths, journal-flush races — derives from seed.
func NewChaos(seed int64) *Chaos {
	return &Chaos{
		rng:     rand.New(rand.NewSource(seed)),
		live:    map[string]*chaosNode{},
		durable: map[string]*chaosNode{},
		dirs:    map[string]bool{},
		faults:  map[int]fault{},
	}
}

// SetCrashAtOp schedules the virtual power cut at the k-th operation
// (1-based). That operation fails with ErrCrashed — a write applies a
// seeded partial prefix first — and every later operation fails the same
// way until Reboot.
func (c *Chaos) SetCrashAtOp(k int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashAt = k
}

// FailOp schedules operation k (1-based) to fail with err; the operation
// has no effect. Use ErrIO or ErrDiskFull for the classic cases.
func (c *Chaos) FailOp(k int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.faults[k] = fault{err: err}
}

// ShortWriteOp schedules operation k to tear: if it is a write, a seeded
// strict prefix of the bytes is applied and the write returns ErrIO with
// the short count. Non-write operations fail with ErrIO.
func (c *Chaos) ShortWriteOp(k int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.faults[k] = fault{err: ErrIO, short: true}
}

// LoseRenameOp schedules operation k to be a durability-lost rename: the
// rename succeeds and is visible live, but ordinary file Syncs pass it
// over and a crash never commits it — after a crash it is as if it never
// happened, unless an explicit SyncDir made it durable first. Non-rename
// operations at k are unaffected.
func (c *Chaos) LoseRenameOp(k int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.faults[k] = fault{loseRename: true}
}

// Crash cuts the virtual power immediately: every subsequent operation
// (and every operation on existing handles) fails with ErrCrashed until
// Reboot. Idempotent.
func (c *Chaos) Crash() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashed = true
}

// Crashed reports whether the virtual power is currently cut.
func (c *Chaos) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// Ops returns the number of operations performed so far — the injection
// index space the crash matrix enumerates.
func (c *Chaos) Ops() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// OpAt describes operation k (1-based) of the log, for violation
// messages.
func (c *Chaos) OpAt(k int) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if k < 1 || k > len(c.opLog) {
		return fmt.Sprintf("op %d (beyond recorded log of %d)", k, len(c.opLog))
	}
	return c.opLog[k-1]
}

// Reboot restores the disk to what survived the crash — durable content
// plus seeded torn tails, with a seeded prefix of the pending metadata
// journal committed — and brings the filesystem back online. Handles
// opened before the reboot stay dead. Scheduled faults are cleared so
// recovery code runs against a healthy (post-crash) disk. If no crash
// happened, Reboot first cuts the power, so "whatever was unsynced is
// gone" holds unconditionally.
func (c *Chaos) Reboot() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashed = true

	// A seeded prefix of the pending journal made it to disk.
	if n := len(c.pending); n > 0 {
		c.commitPendingLocked(c.rng.Intn(n+1), false)
	}
	c.pending = nil

	// Rebuild the namespace from the durable view; unsynced suffixes
	// survive as seeded torn tails.
	survivors := map[string]*chaosNode{}
	names := make([]string, 0, len(c.durable))
	for name := range c.durable {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic rng consumption order
	for _, name := range names {
		node := c.durable[name]
		content := append([]byte(nil), node.durable...)
		if len(node.data) > len(node.durable) && bytes.HasPrefix(node.data, node.durable) {
			tail := node.data[len(node.durable):]
			content = append(content, tail[:c.rng.Intn(len(tail)+1)]...)
		}
		survivors[name] = &chaosNode{data: content, durable: append([]byte(nil), content...)}
	}
	c.live = survivors
	c.durable = map[string]*chaosNode{}
	for name, n := range survivors {
		c.durable[name] = n
	}
	c.faults = map[int]fault{}
	c.crashAt = 0
	c.crashed = false
	c.gen++
}

// Install places a file on the disk, fully durable, without consuming an
// operation — for seeding pre-existing state (a prior run's segments)
// before the measured workload begins.
func (c *Chaos) Install(name string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	name = filepath.Clean(name)
	n := &chaosNode{data: append([]byte(nil), data...), durable: append([]byte(nil), data...)}
	c.live[name] = n
	c.durable[name] = n
	c.dirs[filepath.Dir(name)] = true
}

// ReadFile returns the live content of a file, for test assertions.
func (c *Chaos) ReadFile(name string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.live[filepath.Clean(name)]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), n.data...), true
}

// enter charges one operation: it bumps the counter, logs the op, and
// returns the injected fault for this index, or ErrCrashed once the
// power is cut. Callers must hold mu.
func (c *Chaos) enter(desc string) (fault, error) {
	if c.crashed {
		return fault{}, ErrCrashed
	}
	c.ops++
	c.opLog = append(c.opLog, desc)
	if c.crashAt != 0 && c.ops == c.crashAt {
		c.crashed = true
		return fault{}, ErrCrashed
	}
	if f, ok := c.faults[c.ops]; ok {
		return f, nil
	}
	return fault{}, nil
}

// commitPendingLocked applies the first n pending metadata ops to the
// durable namespace, in journal order. Doomed (durability-lost) renames
// are passed over: without force they stay pending, committable only by
// a later SyncDir (force=true) — a crash-time flush (Reboot) discards
// whatever stayed pending, so a doomed rename never commits at crash.
func (c *Chaos) commitPendingLocked(n int, force bool) {
	var kept []metaOp
	for _, op := range c.pending[:n] {
		if op.doomed && !force {
			kept = append(kept, op)
			continue
		}
		switch op.kind {
		case "create":
			c.durable[op.name] = op.node
		case "rename":
			if c.durable[op.old] == op.node {
				delete(c.durable, op.old)
			}
			c.durable[op.name] = op.node
		case "remove":
			if c.durable[op.name] == op.node {
				delete(c.durable, op.name)
			}
		}
	}
	c.pending = append(kept, c.pending[n:]...)
}

// --- FS implementation ---

func (c *Chaos) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	name = filepath.Clean(name)
	f, err := c.enter("openfile " + name)
	if err != nil {
		return nil, err
	}
	if f.err != nil {
		return nil, f.err
	}
	node, exists := c.live[name]
	switch {
	case !exists && flag&os.O_CREATE == 0:
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	case exists && flag&os.O_CREATE != 0 && flag&os.O_EXCL != 0:
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrExist}
	case !exists:
		node = &chaosNode{}
		c.live[name] = node
		c.dirs[filepath.Dir(name)] = true
		c.pending = append(c.pending, metaOp{kind: "create", name: name, node: node})
	}
	if flag&os.O_TRUNC != 0 {
		node.data = nil
	}
	h := &chaosHandle{
		fs: c, gen: c.gen, name: name, node: node,
		appendMode: flag&os.O_APPEND != 0,
		readable:   flag&os.O_WRONLY == 0,
		writable:   flag&(os.O_WRONLY|os.O_RDWR) != 0,
	}
	return h, nil
}

func (c *Chaos) Open(name string) (File, error) {
	return c.OpenFile(name, os.O_RDONLY, 0)
}

func (c *Chaos) Create(name string) (File, error) {
	return c.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (c *Chaos) Rename(oldpath, newpath string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	f, err := c.enter("rename " + oldpath + " -> " + newpath)
	if err != nil {
		return err
	}
	if f.err != nil {
		return f.err
	}
	node, ok := c.live[oldpath]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	delete(c.live, oldpath)
	c.live[newpath] = node
	c.pending = append(c.pending, metaOp{
		kind: "rename", name: newpath, old: oldpath, node: node, doomed: f.loseRename,
	})
	return nil
}

func (c *Chaos) Remove(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	name = filepath.Clean(name)
	f, err := c.enter("remove " + name)
	if err != nil {
		return err
	}
	if f.err != nil {
		return f.err
	}
	node, ok := c.live[name]
	if !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(c.live, name)
	c.pending = append(c.pending, metaOp{kind: "remove", name: name, node: node})
	return nil
}

// Truncate shrinks both the live and durable views: size changes and the
// data they discard commit together on a journaling filesystem, and the
// store only truncates during torn-tail repair, which is immediately
// followed by synced appends.
func (c *Chaos) Truncate(name string, size int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	name = filepath.Clean(name)
	f, err := c.enter(fmt.Sprintf("truncate %s to %d", name, size))
	if err != nil {
		return err
	}
	if f.err != nil {
		return f.err
	}
	node, ok := c.live[name]
	if !ok {
		return &fs.PathError{Op: "truncate", Path: name, Err: fs.ErrNotExist}
	}
	if int64(len(node.data)) > size {
		node.data = node.data[:size]
	} else {
		node.data = append(node.data, make([]byte, size-int64(len(node.data)))...)
	}
	if int64(len(node.durable)) > size {
		node.durable = node.durable[:size]
	}
	return nil
}

func (c *Chaos) MkdirAll(dir string, perm fs.FileMode) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	dir = filepath.Clean(dir)
	f, err := c.enter("mkdirall " + dir)
	if err != nil {
		return err
	}
	if f.err != nil {
		return f.err
	}
	c.dirs[dir] = true
	return nil
}

// SyncDir is the explicit directory-durability barrier: it commits the
// entire pending metadata journal, including durability-lost renames —
// exactly what fsyncing the parent directory buys on a real filesystem.
func (c *Chaos) SyncDir(dir string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	dir = filepath.Clean(dir)
	f, err := c.enter("syncdir " + dir)
	if err != nil {
		return err
	}
	if f.err != nil {
		return f.err
	}
	c.commitPendingLocked(len(c.pending), true)
	return nil
}

func (c *Chaos) ReadDir(dir string) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dir = filepath.Clean(dir)
	f, err := c.enter("readdir " + dir)
	if err != nil {
		return nil, err
	}
	if f.err != nil {
		return nil, f.err
	}
	var names []string
	for name := range c.live {
		if filepath.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	if len(names) == 0 && !c.dirs[dir] {
		return nil, &fs.PathError{Op: "readdir", Path: dir, Err: fs.ErrNotExist}
	}
	sort.Strings(names)
	return names, nil
}

// --- File handle ---

type chaosHandle struct {
	fs         *Chaos
	gen        int
	name       string
	node       *chaosNode
	pos        int64
	appendMode bool
	readable   bool
	writable   bool
	closed     bool
}

// guard charges the operation and fences off closed or pre-reboot
// handles. Caller must hold fs.mu.
func (h *chaosHandle) guard(desc string) (fault, error) {
	if h.closed {
		return fault{}, fs.ErrClosed
	}
	if h.gen != h.fs.gen {
		return fault{}, ErrCrashed
	}
	return h.fs.enter(desc + " " + h.name)
}

func (h *chaosHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, err := h.guard("read")
	if err != nil {
		return 0, err
	}
	if f.err != nil {
		return 0, f.err
	}
	if !h.readable {
		return 0, &fs.PathError{Op: "read", Path: h.name, Err: errors.New("write-only handle")}
	}
	if h.pos >= int64(len(h.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.node.data[h.pos:])
	h.pos += int64(n)
	return n, nil
}

func (h *chaosHandle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, err := h.guard("readat")
	if err != nil {
		return 0, err
	}
	if f.err != nil {
		return 0, f.err
	}
	if off < 0 || off >= int64(len(h.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.node.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *chaosHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, err := h.guard(fmt.Sprintf("write(%dB)", len(p)))
	if err != nil {
		if errors.Is(err, ErrCrashed) && !h.closed && h.gen == h.fs.gen {
			// The power cut mid-write: a seeded prefix reached the page
			// cache (and may yet survive as part of the torn tail).
			h.applyWriteLocked(p[:h.fs.rng.Intn(len(p)+1)])
		}
		return 0, err
	}
	if !h.writable {
		return 0, &fs.PathError{Op: "write", Path: h.name, Err: errors.New("read-only handle")}
	}
	if f.err != nil {
		if f.short && len(p) > 0 {
			n := h.fs.rng.Intn(len(p)) // strict prefix: the injected torn write
			h.applyWriteLocked(p[:n])
			return n, f.err
		}
		return 0, f.err
	}
	h.applyWriteLocked(p)
	return len(p), nil
}

// applyWriteLocked lands bytes at the handle's position (or the end, in
// append mode) in the live view only.
func (h *chaosHandle) applyWriteLocked(p []byte) {
	if h.appendMode {
		h.pos = int64(len(h.node.data))
	}
	if grow := h.pos + int64(len(p)) - int64(len(h.node.data)); grow > 0 {
		h.node.data = append(h.node.data, make([]byte, grow)...)
	}
	copy(h.node.data[h.pos:], p)
	h.pos += int64(len(p))
}

func (h *chaosHandle) Seek(offset int64, whence int) (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, err := h.guard("seek")
	if err != nil {
		return 0, err
	}
	if f.err != nil {
		return 0, f.err
	}
	switch whence {
	case io.SeekStart:
		h.pos = offset
	case io.SeekCurrent:
		h.pos += offset
	case io.SeekEnd:
		h.pos = int64(len(h.node.data)) + offset
	default:
		return 0, fmt.Errorf("chaosfs: bad whence %d", whence)
	}
	if h.pos < 0 {
		h.pos = 0
	}
	return h.pos, nil
}

// Sync makes the file's current content durable and — like a sequential
// filesystem journal — commits every pending metadata operation along
// with it.
func (h *chaosHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, err := h.guard("sync")
	if err != nil {
		return err
	}
	if f.err != nil {
		return f.err
	}
	h.node.durable = append([]byte(nil), h.node.data...)
	h.fs.commitPendingLocked(len(h.fs.pending), false)
	return nil
}

func (h *chaosHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	if h.gen != h.fs.gen || h.fs.crashed {
		h.closed = true
		return ErrCrashed
	}
	h.fs.ops++
	h.fs.opLog = append(h.fs.opLog, "close "+h.name)
	if f, ok := h.fs.faults[h.fs.ops]; ok && f.err != nil {
		h.closed = true
		return f.err
	}
	if h.fs.crashAt != 0 && h.fs.ops == h.fs.crashAt {
		h.fs.crashed = true
		h.closed = true
		return ErrCrashed
	}
	h.closed = true
	return nil
}

func (h *chaosHandle) Name() string { return h.name }

// String summarizes the disk for debugging.
func (c *Chaos) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.live))
	for n := range c.live {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "chaosfs{ops=%d crashed=%v pending=%d", c.ops, c.crashed, len(c.pending))
	for _, n := range names {
		node := c.live[n]
		fmt.Fprintf(&b, " %s(%d/%dB)", n, len(node.durable), len(node.data))
	}
	b.WriteString("}")
	return b.String()
}
