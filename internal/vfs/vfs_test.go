package vfs_test

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cendev/internal/vfs"
)

// TestFSContract runs the same basic read/write/rename/readdir exercise
// against both implementations: chaosfs (fault-free) must be
// indistinguishable from the real filesystem.
func TestFSContract(t *testing.T) {
	impls := map[string]func(t *testing.T) (vfs.FS, string){
		"os": func(t *testing.T) (vfs.FS, string) {
			return vfs.OS(), t.TempDir()
		},
		"chaos": func(t *testing.T) (vfs.FS, string) {
			return vfs.NewChaos(1), "/virt"
		},
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			fsys, dir := mk(t)
			if err := fsys.MkdirAll(dir, 0o755); err != nil {
				t.Fatalf("MkdirAll: %v", err)
			}
			p := filepath.Join(dir, "a.jsonl")

			if _, err := fsys.Open(p); err == nil || !os.IsNotExist(err) {
				t.Fatalf("Open(missing) = %v, want not-exist", err)
			}

			f, err := fsys.OpenFile(p, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatalf("OpenFile: %v", err)
			}
			for _, line := range []string{"one\n", "two\n"} {
				if n, err := f.Write([]byte(line)); err != nil || n != len(line) {
					t.Fatalf("Write = (%d, %v)", n, err)
				}
			}
			if err := f.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
			// ReadAt does not disturb the append position.
			buf := make([]byte, 3)
			if _, err := f.ReadAt(buf, 4); err != nil && err != io.EOF {
				t.Fatalf("ReadAt: %v", err)
			}
			if string(buf) != "two" {
				t.Fatalf("ReadAt = %q, want %q", buf, "two")
			}
			if _, err := f.Write([]byte("three\n")); err != nil {
				t.Fatalf("append after ReadAt: %v", err)
			}
			if err := f.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			// Seek + sequential read through a fresh handle.
			r, err := fsys.Open(p)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			if off, err := r.Seek(4, io.SeekStart); err != nil || off != 4 {
				t.Fatalf("Seek = (%d, %v)", off, err)
			}
			rest, err := io.ReadAll(r)
			if err != nil {
				t.Fatalf("ReadAll: %v", err)
			}
			if string(rest) != "two\nthree\n" {
				t.Fatalf("read = %q", rest)
			}
			r.Close()

			// Rename, Remove, ReadDir, Glob.
			if err := fsys.Rename(p, filepath.Join(dir, "b.jsonl")); err != nil {
				t.Fatalf("Rename: %v", err)
			}
			g, err := fsys.Create(filepath.Join(dir, "c.tmp"))
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			g.Close()
			names, err := fsys.ReadDir(dir)
			if err != nil {
				t.Fatalf("ReadDir: %v", err)
			}
			if want := []string{"b.jsonl", "c.tmp"}; strings.Join(names, ",") != strings.Join(want, ",") {
				t.Fatalf("ReadDir = %v, want %v", names, want)
			}
			matches, err := vfs.Glob(fsys, dir, "*.jsonl")
			if err != nil {
				t.Fatalf("Glob: %v", err)
			}
			if len(matches) != 1 || filepath.Base(matches[0]) != "b.jsonl" {
				t.Fatalf("Glob = %v", matches)
			}
			if err := fsys.Remove(filepath.Join(dir, "c.tmp")); err != nil {
				t.Fatalf("Remove: %v", err)
			}
			if _, err := fsys.Open(filepath.Join(dir, "c.tmp")); !os.IsNotExist(err) {
				t.Fatalf("Open(removed) = %v, want not-exist", err)
			}
		})
	}
}

// TestChaosDurability: synced bytes survive a reboot; unsynced bytes
// survive at most as a torn prefix of what was written after the sync.
func TestChaosDurability(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		c := vfs.NewChaos(seed)
		f, err := c.OpenFile("d/log", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte("synced|"))
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		f.Write([]byte("unsynced"))
		c.Reboot()

		got, ok := c.ReadFile("d/log")
		if !ok {
			t.Fatalf("seed %d: file lost entirely despite sync", seed)
		}
		if !bytes.HasPrefix(got, []byte("synced|")) {
			t.Fatalf("seed %d: synced prefix lost: %q", seed, got)
		}
		if !bytes.HasPrefix([]byte("synced|unsynced"), got) {
			t.Fatalf("seed %d: survivor %q is not a prefix of what was written", seed, got)
		}
	}
}

// TestChaosRenameDurability: a rename is pending until some Sync commits
// the journal; after that it survives any crash. A LoseRenameOp rename
// never commits even across syncs.
func TestChaosRenameDurability(t *testing.T) {
	write := func(c *vfs.Chaos, path, content string, sync bool) {
		f, err := c.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte(content))
		if sync {
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
		}
		f.Close()
	}

	t.Run("committed-by-any-sync", func(t *testing.T) {
		c := vfs.NewChaos(7)
		write(c, "dir/old", "old-content", true)
		write(c, "dir/new.tmp", "new-content", true)
		if err := c.Rename("dir/new.tmp", "dir/old"); err != nil {
			t.Fatal(err)
		}
		// Sync an unrelated file: the sequential journal carries the
		// rename with it.
		write(c, "dir/other", "x", true)
		c.Reboot()
		got, ok := c.ReadFile("dir/old")
		if !ok || string(got) != "new-content" {
			t.Fatalf("rename did not survive despite later sync: %q ok=%v", got, ok)
		}
	})

	t.Run("uncommitted-may-roll-back", func(t *testing.T) {
		rolledBack := false
		for seed := int64(0); seed < 32; seed++ {
			c := vfs.NewChaos(seed)
			write(c, "dir/old", "old-content", true)
			write(c, "dir/new.tmp", "new-content", true)
			if err := c.Rename("dir/new.tmp", "dir/old"); err != nil {
				t.Fatal(err)
			}
			c.Reboot()
			got, ok := c.ReadFile("dir/old")
			if !ok {
				t.Fatalf("seed %d: target vanished entirely", seed)
			}
			switch string(got) {
			case "new-content": // journal flushed in time
			case "old-content":
				rolledBack = true
			default:
				t.Fatalf("seed %d: torn rename target %q", seed, got)
			}
		}
		if !rolledBack {
			t.Fatal("no seed ever rolled the uncommitted rename back")
		}
	})

	t.Run("lost-rename-never-commits", func(t *testing.T) {
		c := vfs.NewChaos(7)
		write(c, "dir/old", "old-content", true)
		write(c, "dir/new.tmp", "new-content", true)
		c.LoseRenameOp(c.Ops() + 1)
		if err := c.Rename("dir/new.tmp", "dir/old"); err != nil {
			t.Fatal(err)
		}
		// Live view sees the rename...
		if got, ok := c.ReadFile("dir/old"); !ok || string(got) != "new-content" {
			t.Fatalf("live view = %q ok=%v", got, ok)
		}
		write(c, "dir/other", "x", true) // journal commit — skips the doomed op
		c.Reboot()
		if got, ok := c.ReadFile("dir/old"); !ok || string(got) != "old-content" {
			t.Fatalf("lost rename committed anyway: %q ok=%v", got, ok)
		}
	})
}

// TestChaosInjection: FailOp, ShortWriteOp and SetCrashAtOp hit exactly
// the scheduled operation.
func TestChaosInjection(t *testing.T) {
	t.Run("fail-sync", func(t *testing.T) {
		c := vfs.NewChaos(1)
		f, _ := c.Create("f") // op 1
		f.Write([]byte("x"))  // op 2
		c.FailOp(3, vfs.ErrDiskFull)
		if err := f.Sync(); !errors.Is(err, vfs.ErrDiskFull) {
			t.Fatalf("Sync = %v, want ErrDiskFull", err)
		}
		if err := f.Sync(); err != nil { // next op is healthy again
			t.Fatalf("second Sync = %v", err)
		}
	})

	t.Run("short-write", func(t *testing.T) {
		c := vfs.NewChaos(3)
		f, _ := c.Create("f")
		c.ShortWriteOp(2)
		payload := []byte("0123456789")
		n, err := f.Write(payload)
		if !errors.Is(err, vfs.ErrIO) {
			t.Fatalf("Write = (%d, %v), want ErrIO", n, err)
		}
		if n >= len(payload) {
			t.Fatalf("short write applied %d of %d bytes", n, len(payload))
		}
		got, _ := c.ReadFile("f")
		if !bytes.Equal(got, payload[:n]) {
			t.Fatalf("file = %q, want %q", got, payload[:n])
		}
	})

	t.Run("crash-at-op", func(t *testing.T) {
		c := vfs.NewChaos(5)
		f, _ := c.Create("f")
		f.Write([]byte("a"))
		f.Sync()
		c.SetCrashAtOp(c.Ops() + 1)
		if _, err := f.Write([]byte("b")); !errors.Is(err, vfs.ErrCrashed) {
			t.Fatalf("Write = %v, want ErrCrashed", err)
		}
		if !c.Crashed() {
			t.Fatal("not crashed")
		}
		if _, err := c.Open("f"); !errors.Is(err, vfs.ErrCrashed) {
			t.Fatalf("Open after crash = %v, want ErrCrashed", err)
		}
		c.Reboot()
		// Pre-crash handle stays dead after reboot.
		if _, err := f.Write([]byte("c")); !errors.Is(err, vfs.ErrCrashed) {
			t.Fatalf("stale handle Write = %v, want ErrCrashed", err)
		}
		got, ok := c.ReadFile("f")
		if !ok || !bytes.HasPrefix(got, []byte("a")) {
			t.Fatalf("synced byte lost: %q ok=%v", got, ok)
		}
	})
}

// TestWriteFileDurable: the artifact is either absent (crash before the
// rename committed) or complete — never torn — and no .tmp debris is
// left behind on the happy path.
func TestWriteFileDurable(t *testing.T) {
	payload := "complete-artifact-payload"
	writeIt := func(fsys vfs.FS) error {
		return vfs.WriteFileDurable(fsys, "out/metrics.json", func(w io.Writer) error {
			_, err := io.WriteString(w, payload)
			return err
		})
	}

	t.Run("happy-path", func(t *testing.T) {
		c := vfs.NewChaos(1)
		if err := c.MkdirAll("out", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := writeIt(c); err != nil {
			t.Fatal(err)
		}
		names, _ := c.ReadDir("out")
		if len(names) != 1 || names[0] != "metrics.json" {
			t.Fatalf("ReadDir = %v, want just metrics.json", names)
		}
	})

	t.Run("never-torn", func(t *testing.T) {
		// Crash at every op index the flow uses, on several seeds: the
		// published artifact must be all-or-nothing.
		for seed := int64(0); seed < 10; seed++ {
			probe := vfs.NewChaos(seed)
			probe.MkdirAll("out", 0o755)
			if err := writeIt(probe); err != nil {
				t.Fatal(err)
			}
			n := probe.Ops()
			for at := 2; at <= n+1; at++ { // op 1 is the probe's MkdirAll
				c := vfs.NewChaos(seed)
				c.MkdirAll("out", 0o755)
				c.SetCrashAtOp(at)
				writeIt(c)
				c.Reboot()
				// Absent is fine (crash before the rename committed);
				// present means byte-for-byte complete.
				if got, ok := c.ReadFile("out/metrics.json"); ok && string(got) != payload {
					t.Fatalf("seed %d crash@%d (%s): torn artifact %q",
						seed, at, c.OpAt(at), got)
				}
			}
		}
	})
}

// TestChaosInstall: installed state is durable and costs no operations.
func TestChaosInstall(t *testing.T) {
	c := vfs.NewChaos(1)
	c.Install("d/seeded.jsonl", []byte("pre-existing\n"))
	if c.Ops() != 0 {
		t.Fatalf("Install consumed %d ops", c.Ops())
	}
	c.Reboot()
	got, ok := c.ReadFile("d/seeded.jsonl")
	if !ok || string(got) != "pre-existing\n" {
		t.Fatalf("installed file = %q ok=%v", got, ok)
	}
	names, err := c.ReadDir("d")
	if err != nil || len(names) != 1 {
		t.Fatalf("ReadDir = %v, %v", names, err)
	}
}
