// Package vfs is the narrow filesystem seam under every durable artifact
// this repository writes: the censerved sharded result store, the
// centrace campaign journal, and the obs -metrics-out/-trace-out dumps.
// Production code writes through the passthrough OS() implementation;
// crash-safety tests write through Chaos, a seeded deterministic fault
// injector that can fail or tear any operation and simulate a power cut
// (freeze the virtual disk at last-synced state, "reboot", replay
// recovery). The interface is deliberately small — exactly the
// operations the persistence layers use — so the chaos model stays
// faithful and the crash matrix in vfs/crashtest can enumerate every
// injection point.
package vfs

import (
	"io"
	"io/fs"
	"path"
	"path/filepath"
	"sort"
)

// File is the subset of *os.File the persistence layers use. Sync is the
// durability barrier: bytes written before a successful Sync survive a
// crash, bytes after it may not.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.Seeker
	io.Closer
	// Sync flushes the file's content to stable storage.
	Sync() error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem operations seam. Implementations: OS()
// (passthrough to package os) and NewChaos (seeded fault injector).
type FS interface {
	// OpenFile is the generalized open; flag is the os.O_* bitmask.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Open opens a file read-only.
	Open(name string) (File, error)
	// Create truncate-creates a file for writing.
	Create(name string) (File, error)
	// Rename atomically replaces newpath with oldpath. Durability of the
	// rename itself is a separate property from the data's — publishing
	// an unsynced file via Rename is the classic crash bug chaosfs
	// exists to catch.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate cuts the named file to size bytes.
	Truncate(name string, size int64) error
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(dir string, perm fs.FileMode) error
	// SyncDir flushes a directory's entries to stable storage — the
	// fsync-the-parent step that makes a preceding Rename durable on
	// filesystems that do not order metadata behind file fsyncs. Code
	// that must not lose a rename calls this right after it.
	SyncDir(dir string) error
	// ReadDir returns the sorted base names of the files in dir.
	ReadDir(dir string) ([]string, error)
}

// Glob returns the full paths of files in dir whose base name matches
// pattern (path.Match syntax), sorted — the vfs equivalent of
// filepath.Glob(dir/pattern).
func Glob(fsys FS, dir, pattern string) ([]string, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, n := range names {
		ok, err := path.Match(pattern, n)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, filepath.Join(dir, n))
		}
	}
	sort.Strings(out)
	return out, nil
}

// WriteFileDurable writes a whole artifact with the temp+fsync+rename
// recipe: content lands in path+".tmp", is synced, and only then renamed
// over path — so a crash at any point leaves either the old complete
// artifact or the new complete artifact, never a torn one. The write
// callback receives the temp file's writer.
func WriteFileDurable(fsys FS, path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return nil
}
