// Package crashtest is the crash-matrix harness: it runs a storage
// workload once fault-free to count its filesystem operations, then
// re-runs it once per (seed, fault mode, operation index) cell with that
// single fault injected, cuts the virtual power at the end of every run,
// reboots, and hands the survivors to a verifier. The verifier owns the
// invariants — typically "no acknowledged write lost, no torn record
// surfaces after recovery" — and any cell whose verifier fails becomes a
// Violation naming the seed, the mode, and the exact operation hit.
//
// The harness is exhaustive by construction: every operation the
// workload performs — every open, append, sync, rename, truncate —
// is an injection point, so a durability bug cannot hide between two
// hand-picked fault sites. Everything is deterministic: a reported
// (seed, mode, point) triple replays byte-for-byte under a debugger.
package crashtest

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"cendev/internal/vfs"
)

// Mode is a fault flavor injected at one operation index.
type Mode string

const (
	// ModeCrash cuts the power at the operation (a seeded prefix of a
	// torn write may survive).
	ModeCrash Mode = "crash"
	// ModeEIO fails the operation with an I/O error.
	ModeEIO Mode = "eio"
	// ModeENOSPC fails the operation with a disk-full error.
	ModeENOSPC Mode = "enospc"
	// ModeShortWrite tears the operation if it is a write: a seeded
	// strict prefix lands, then ErrIO.
	ModeShortWrite Mode = "short-write"
	// ModeRenameLost lets the operation succeed but, if it is a rename,
	// it never becomes durable.
	ModeRenameLost Mode = "rename-lost"
)

// AllModes is every fault flavor the harness knows.
var AllModes = []Mode{ModeCrash, ModeEIO, ModeENOSPC, ModeShortWrite, ModeRenameLost}

// Acks records what the workload considers acknowledged: state a client
// was told is durable. Verify receives the final snapshot; anything in
// it that recovery cannot reproduce is a lost acknowledged write.
type Acks struct {
	mu sync.Mutex
	m  map[string]string
}

// Ack records (or supersedes) the acknowledged value for key.
func (a *Acks) Ack(key, value string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.m == nil {
		a.m = map[string]string{}
	}
	a.m[key] = value
}

// Snapshot returns a copy of the acknowledged state.
func (a *Acks) Snapshot() map[string]string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]string, len(a.m))
	for k, v := range a.m {
		out[k] = v
	}
	return out
}

// Config describes one crash matrix.
type Config struct {
	// Seeds drive every nondeterministic choice (torn-tail lengths,
	// journal-flush races). Empty means DefaultSeeds().
	Seeds []int64
	// Modes are the fault flavors to enumerate. Empty means AllModes.
	Modes []Mode
	// Workload runs the system under test against fsys, acknowledging
	// via ack exactly what it believes is durable. It may return an
	// error once faults start landing — the matrix only cares what the
	// verifier finds afterwards — but must succeed in the fault-free
	// probe run.
	Workload func(fsys vfs.FS, ack *Acks) error
	// Verify reopens the system against the post-reboot fsys and checks
	// the invariants against the acknowledged state. It must pass in the
	// fault-free probe run.
	Verify func(fsys vfs.FS, acked map[string]string) error
}

// Violation is one failed cell.
type Violation struct {
	Seed  int64
	Mode  Mode
	Point int    // 1-based operation index the fault was scheduled at
	Op    string // description of that operation in the probe run
	Err   error  // what the verifier reported
}

func (v Violation) String() string {
	return fmt.Sprintf("seed=%d mode=%s point=%d (%s): %v", v.Seed, v.Mode, v.Point, v.Op, v.Err)
}

// Result summarizes a matrix run.
type Result struct {
	Points     int // operation count of the fault-free probe
	Cells      int // seed × mode × point cells executed
	Violations []Violation
}

// DefaultSeeds returns seeds 1..n where n comes from CRASH_MATRIX_SEEDS
// (the CI gate sets 50) and defaults to 8 to keep plain `go test` quick.
func DefaultSeeds() []int64 {
	n := 8
	if s := os.Getenv("CRASH_MATRIX_SEEDS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

// Run executes the matrix. It returns an error only when the harness
// itself is misconfigured or the fault-free probe fails — invariant
// failures under fault land in Result.Violations.
func Run(cfg Config) (Result, error) {
	if cfg.Workload == nil || cfg.Verify == nil {
		return Result{}, fmt.Errorf("crashtest: Config needs both Workload and Verify")
	}
	seeds := cfg.Seeds
	if len(seeds) == 0 {
		seeds = DefaultSeeds()
	}
	modes := cfg.Modes
	if len(modes) == 0 {
		modes = AllModes
	}

	// Probe run: no injected faults (but still a crash at the end — the
	// baseline invariant is that a clean shutdown's acks survive).
	probe := vfs.NewChaos(seeds[0])
	acks := &Acks{}
	if err := cfg.Workload(probe, acks); err != nil {
		return Result{}, fmt.Errorf("crashtest: fault-free workload failed: %w", err)
	}
	points := probe.Ops()
	if points == 0 {
		return Result{}, fmt.Errorf("crashtest: workload performed no filesystem operations")
	}
	opDesc := make([]string, points+1)
	for i := 1; i <= points; i++ {
		opDesc[i] = probe.OpAt(i)
	}
	probe.Reboot()
	if err := cfg.Verify(probe, acks.Snapshot()); err != nil {
		return Result{}, fmt.Errorf("crashtest: fault-free verify failed: %w", err)
	}

	res := Result{Points: points}
	for _, seed := range seeds {
		for _, mode := range modes {
			for point := 1; point <= points; point++ {
				c := vfs.NewChaos(seed)
				switch mode {
				case ModeCrash:
					c.SetCrashAtOp(point)
				case ModeEIO:
					c.FailOp(point, vfs.ErrIO)
				case ModeENOSPC:
					c.FailOp(point, vfs.ErrDiskFull)
				case ModeShortWrite:
					c.ShortWriteOp(point)
				case ModeRenameLost:
					c.LoseRenameOp(point)
				default:
					return res, fmt.Errorf("crashtest: unknown mode %q", mode)
				}
				acks := &Acks{}
				// The workload may error once the fault lands; the
				// verifier is the judge.
				_ = cfg.Workload(c, acks)
				// Power cut at the end of every cell: acknowledged means
				// durable NOW, not durable eventually.
				c.Crash()
				c.Reboot()
				res.Cells++
				if err := cfg.Verify(c, acks.Snapshot()); err != nil {
					res.Violations = append(res.Violations, Violation{
						Seed: seed, Mode: mode, Point: point, Op: opDesc[point], Err: err,
					})
				}
			}
		}
	}
	return res, nil
}

// RunT runs the matrix under a test, failing it on harness errors or any
// violation (the first few are printed in full).
func RunT(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("crash matrix: %v", err)
	}
	const show = 10
	for i, v := range res.Violations {
		if i == show {
			t.Errorf("... and %d more violations", len(res.Violations)-show)
			break
		}
		t.Errorf("crash matrix violation: %s", v)
	}
	if len(res.Violations) == 0 {
		t.Logf("crash matrix clean: %d cells (%d points × %d seeds × %d modes)",
			res.Cells, res.Points, len(seedsOf(cfg)), len(modesOf(cfg)))
	}
	return res
}

func seedsOf(cfg Config) []int64 {
	if len(cfg.Seeds) > 0 {
		return cfg.Seeds
	}
	return DefaultSeeds()
}

func modesOf(cfg Config) []Mode {
	if len(cfg.Modes) > 0 {
		return cfg.Modes
	}
	return AllModes
}
