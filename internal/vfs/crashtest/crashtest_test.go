package crashtest_test

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"

	"cendev/internal/vfs"
	"cendev/internal/vfs/crashtest"
)

// The toy system under test: a key=value line log. The correct variant
// syncs before acknowledging; the broken variant acknowledges first.
func logWorkload(ackBeforeSync bool) func(fsys vfs.FS, ack *crashtest.Acks) error {
	return func(fsys vfs.FS, ack *crashtest.Acks) error {
		if err := fsys.MkdirAll("d", 0o755); err != nil {
			return err
		}
		f, err := fsys.OpenFile("d/log", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		for i := 0; i < 4; i++ {
			k, v := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
			if _, err := fmt.Fprintf(f, "%s=%s\n", k, v); err != nil {
				return err
			}
			if ackBeforeSync {
				ack.Ack(k, v)
				if err := f.Sync(); err != nil {
					return err
				}
			} else {
				if err := f.Sync(); err != nil {
					return err
				}
				ack.Ack(k, v)
			}
		}
		return nil
	}
}

// logVerify replays the log and checks every acknowledged pair is
// recoverable; a torn last line is tolerated, torn interior lines are
// not.
func logVerify(fsys vfs.FS, acked map[string]string) error {
	got := map[string]string{}
	f, err := fsys.Open("d/log")
	if err != nil {
		if os.IsNotExist(err) && len(acked) == 0 {
			return nil
		}
		if os.IsNotExist(err) {
			return fmt.Errorf("log missing with %d acks", len(acked))
		}
		return err
	}
	defer f.Close()
	data, err := io.ReadAll(bufio.NewReader(f))
	if err != nil {
		return err
	}
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		if line == "" {
			continue
		}
		k, v, ok := strings.Cut(line, "=")
		if !ok || !strings.HasPrefix(k, "k") {
			if i == len(lines)-1 {
				continue // torn tail: acceptable, repairable
			}
			return fmt.Errorf("torn interior line %d: %q", i, line)
		}
		got[k] = v
	}
	for k, v := range acked {
		if got[k] != v {
			return fmt.Errorf("acked %s=%s lost (recovered %q)", k, v, got[k])
		}
	}
	return nil
}

func TestHarnessPassesCorrectLog(t *testing.T) {
	res := crashtest.RunT(t, crashtest.Config{
		Seeds:    []int64{1, 2, 3, 4},
		Workload: logWorkload(false),
		Verify:   logVerify,
	})
	if res.Cells == 0 || res.Points == 0 {
		t.Fatalf("matrix ran no cells: %+v", res)
	}
}

// TestHarnessCatchesAckBeforeSync: acknowledging before the sync must
// produce violations — if the matrix cannot see this bug it cannot see
// any.
func TestHarnessCatchesAckBeforeSync(t *testing.T) {
	res, err := crashtest.Run(crashtest.Config{
		Seeds:    []int64{1, 2, 3, 4},
		Modes:    []crashtest.Mode{crashtest.ModeCrash, crashtest.ModeEIO},
		Workload: logWorkload(true),
		Verify:   logVerify,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("ack-before-sync log passed the crash matrix: harness has no teeth")
	}
	t.Logf("caught %d violations, e.g. %s", len(res.Violations), res.Violations[0])
}

// TestHarnessRejectsBrokenProbe: a workload that cannot even pass
// fault-free is a harness-usage error, not a violation.
func TestHarnessRejectsBrokenProbe(t *testing.T) {
	_, err := crashtest.Run(crashtest.Config{
		Seeds: []int64{1},
		Workload: func(fsys vfs.FS, ack *crashtest.Acks) error {
			ack.Ack("ghost", "never-written")
			return nil
		},
		Verify: logVerify,
	})
	if err == nil {
		t.Fatal("probe with unrecoverable ack should fail Run")
	}
}
