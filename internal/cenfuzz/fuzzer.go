package cenfuzz

import (
	"fmt"
	"time"

	"cendev/internal/blockpage"
	"cendev/internal/endpoint"
	"cendev/internal/faults"
	"cendev/internal/httpgram"
	"cendev/internal/netem"
	"cendev/internal/obs"
	"cendev/internal/parallel"
	"cendev/internal/simnet"
	"cendev/internal/tlsgram"
	"cendev/internal/topology"
)

// Outcome classifies one fuzz measurement.
type Outcome int

// Measurement outcomes. The blocked outcomes follow the paper's
// conservative definition (§6.2): repeated packet drops, connection resets
// or failures, and known injected blockpages.
const (
	OutcomeOK Outcome = iota
	OutcomeBlockedDrop
	OutcomeBlockedRST
	OutcomeBlockedFIN
	OutcomeBlockedPage
)

// Blocked reports whether the outcome is any blocking class.
func (o Outcome) Blocked() bool { return o != OutcomeOK }

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeBlockedDrop:
		return "blocked-drop"
	case OutcomeBlockedRST:
		return "blocked-rst"
	case OutcomeBlockedFIN:
		return "blocked-fin"
	case OutcomeBlockedPage:
		return "blocked-page"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Config parameterizes a fuzzing run.
type Config struct {
	TestDomain    string
	ControlDomain string
	// Retries for timed-out measurements before accepting a drop verdict.
	Retries int
	// WaitBlocked is the pause after a blocked measurement (§6.2: 120 s to
	// avoid stateful blocking effects); WaitOK after an unblocked one (3 s).
	WaitBlocked time.Duration
	WaitOK      time.Duration
	// Workers is the number of parallel strategy workers for Run. Each
	// worker owns a private clone of the network, and every strategy is
	// measured from the same canonical post-baseline state, so results are
	// identical for every worker count. Values below 1 mean one worker.
	Workers int
	// Obs, when non-nil, receives measurement-outcome, retry, and
	// permutation-verdict counters. The recorded series are deterministic
	// for a given scenario and seed at any worker count.
	Obs *obs.Registry
	// Tracer, when non-nil, records run/strategy spans stamped with the
	// network's virtual clock.
	Tracer *obs.Tracer
	// Parent, when non-nil, is the span Run nests under (ignored without a
	// Tracer).
	Parent *obs.Span
}

func (c Config) withDefaults() Config {
	if c.Retries == 0 {
		c.Retries = 3
	}
	if c.WaitBlocked == 0 {
		c.WaitBlocked = 120 * time.Second
	}
	if c.WaitOK == 0 {
		c.WaitOK = 3 * time.Second
	}
	return c
}

// Fuzzer runs CenFuzz measurements from a client against one endpoint.
type Fuzzer struct {
	Net      *simnet.Network
	Client   *topology.Host
	Endpoint *topology.Host
	Config   Config
	// m holds the pre-resolved metric handles, shared with the per-worker
	// sub-fuzzers Run derives. Nil when Config.Obs is nil (the no-op path).
	m *fuzzerMetrics
}

// fuzzerMetrics are the fuzzing series, resolved once per Fuzzer so the
// per-permutation loop never takes the registry lock.
type fuzzerMetrics struct {
	outcomes [5]*obs.Counter         // cenfuzz_measurements_total{outcome}
	retries  *obs.Counter            // cenfuzz_retries_total
	perms    map[string]*obs.Counter // cenfuzz_perms_total{verdict}
}

// measured accounts one finished measurement; retried counts its extra
// attempts. Nil-safe.
func (m *fuzzerMetrics) measured(o Outcome, retried int) {
	if m == nil {
		return
	}
	m.outcomes[o].Inc()
	m.retries.Add(int64(retried))
}

// permDone accounts one permutation verdict. Nil-safe.
func (m *fuzzerMetrics) permDone(pr PermResult) {
	if m == nil {
		return
	}
	switch {
	case !pr.Valid:
		m.perms["invalid"].Inc()
	case pr.Circumvented:
		m.perms["circumvented"].Inc()
	case pr.Evaded:
		m.perms["evaded"].Inc()
	default:
		m.perms["no-evasion"].Inc()
	}
}

// New returns a Fuzzer with defaulted configuration.
func New(net *simnet.Network, client, ep *topology.Host, cfg Config) *Fuzzer {
	f := &Fuzzer{Net: net, Client: client, Endpoint: ep, Config: cfg.withDefaults()}
	if r := f.Config.Obs; r != nil {
		f.m = &fuzzerMetrics{
			retries: r.Counter("cenfuzz_retries_total"),
			perms:   make(map[string]*obs.Counter, 4),
		}
		for o := OutcomeOK; o <= OutcomeBlockedPage; o++ {
			f.m.outcomes[o] = r.Counter("cenfuzz_measurements_total", obs.L("outcome", o.String()))
		}
		for _, v := range []string{"invalid", "circumvented", "evaded", "no-evasion"} {
			f.m.perms[v] = r.Counter("cenfuzz_perms_total", obs.L("verdict", v))
		}
	}
	return f
}

// Measurement is one raw request/response observation.
type Measurement struct {
	Outcome Outcome
	// HTTPStatus is the response status for HTTP measurements that got a
	// response (0 otherwise).
	HTTPStatus int
	// ServedContent is true when the response carried the canonical
	// content for the requested domain (HTTP 200) or a TLS Server Hello —
	// the circumvention criterion.
	ServedContent bool
	// Body is the raw response payload, when any.
	Body []byte
}

// measureOnce sends payload segments on a fresh connection and classifies
// the response without retrying.
func (f *Fuzzer) measureOnce(segments [][]byte, port uint16) Measurement {
	conn, err := f.Net.Dial(f.Client, f.Endpoint, port)
	if err != nil {
		return Measurement{Outcome: OutcomeBlockedDrop}
	}
	defer conn.Close()
	ds := conn.SendSegments(segments, 64)
	m := Measurement{Outcome: OutcomeBlockedDrop} // silence = drop
	sawData := false
	for _, d := range ds {
		pkt := d.Packet
		if pkt.TCP == nil || pkt.IP.Src != f.Endpoint.Addr {
			continue
		}
		switch {
		case pkt.TCP.Flags&netem.TCPRst != 0:
			if !sawData {
				return Measurement{Outcome: OutcomeBlockedRST}
			}
		case len(pkt.Payload) > 0:
			sawData = true
			m = f.classifyData(pkt.Payload, port)
		case pkt.TCP.Flags&netem.TCPFin != 0 && !sawData:
			m = Measurement{Outcome: OutcomeBlockedFIN}
		}
	}
	return m
}

// classifyData interprets a payload-bearing response.
func (f *Fuzzer) classifyData(body []byte, port uint16) Measurement {
	if _, ok := blockpage.Match(body); ok {
		return Measurement{Outcome: OutcomeBlockedPage, Body: body}
	}
	m := Measurement{Outcome: OutcomeOK, Body: body}
	if port == 443 {
		_, m.ServedContent = endpoint.IsServerHello(body)
		return m
	}
	// HTTP: parse the status line.
	m.HTTPStatus = httpgram.ParseStatus(body)
	m.ServedContent = m.HTTPStatus == 200
	return m
}

// Measure runs one measurement with timeout retries and the post-wait.
// It is exported for reuse by other measurement campaigns (e.g. the
// Geneva-style search baseline in internal/evolve).
func (f *Fuzzer) Measure(payload []byte, port uint16) Measurement {
	return f.MeasureSegments([][]byte{payload}, port)
}

// MeasureSegments is Measure for multi-segment sends (the segmentation
// extension strategy).
func (f *Fuzzer) MeasureSegments(segments [][]byte, port uint16) Measurement {
	var m Measurement
	attempts := 0
	for attempt := 0; attempt <= f.Config.Retries; attempt++ {
		attempts++
		m = f.measureOnce(segments, port)
		if m.Outcome != OutcomeBlockedDrop {
			break
		}
		f.Net.Sleep(f.Config.WaitBlocked) // wait out stateful blocking before retrying
	}
	f.m.measured(m.Outcome, attempts-1)
	if m.Outcome.Blocked() {
		f.Net.Sleep(f.Config.WaitBlocked)
	} else {
		f.Net.Sleep(f.Config.WaitOK)
	}
	return m
}

// PermResult is the verdict for one permutation of one strategy.
type PermResult struct {
	Strategy string
	Desc     string
	Test     Measurement
	Control  Measurement
	// Valid means the verdict is interpretable: the control permutation
	// was not blocked (§6.2).
	Valid bool
	// Evaded ("successful") means the normal test request was blocked but
	// this permutation was not (§6.2).
	Evaded bool
	// Circumvented means the permutation evaded AND fetched the intended
	// resource correctly (§6: "the probe loads the intended resource").
	Circumvented bool
}

// StrategyResult aggregates one strategy's permutations.
type StrategyResult struct {
	Name     string
	Category string
	Proto    Proto
	Perms    []PermResult
}

// SuccessRate is the fraction of valid permutations that evaded.
func (s *StrategyResult) SuccessRate() float64 {
	valid, evaded := 0, 0
	for _, p := range s.Perms {
		if p.Valid {
			valid++
			if p.Evaded {
				evaded++
			}
		}
	}
	if valid == 0 {
		return 0
	}
	return float64(evaded) / float64(valid)
}

// CircumventionRate is the fraction of valid permutations that both evaded
// and fetched correct content.
func (s *StrategyResult) CircumventionRate() float64 {
	valid, circ := 0, 0
	for _, p := range s.Perms {
		if p.Valid {
			valid++
			if p.Circumvented {
				circ++
			}
		}
	}
	if valid == 0 {
		return 0
	}
	return float64(circ) / float64(valid)
}

// Result is a full CenFuzz run against one endpoint.
type Result struct {
	TestDomain    string
	ControlDomain string
	// NormalBlocked maps protocol → whether the canonical request for the
	// test domain was blocked. Strategies for protocols that are not
	// blocked at all yield no evasion signal.
	NormalBlocked map[Proto]bool
	Strategies    []StrategyResult
	// TotalMeasurements counts individual request/response measurements.
	TotalMeasurements int
}

// EvadedStrategies lists the names of strategies whose evasion rate
// exceeds the threshold.
func (r *Result) EvadedStrategies(threshold float64) []string {
	var out []string
	for i := range r.Strategies {
		if r.Strategies[i].SuccessRate() > threshold {
			out = append(out, r.Strategies[i].Name)
		}
	}
	return out
}

// Strategy returns the named strategy result, or nil.
func (r *Result) Strategy(name string) *StrategyResult {
	for i := range r.Strategies {
		if r.Strategies[i].Name == name {
			return &r.Strategies[i]
		}
	}
	return nil
}

// Run executes the given strategies (nil = the full Table 2 catalog)
// against the endpoint: first a fresh Normal baseline per protocol for the
// test domain, then, for each strategy, each permutation for the control
// domain and the test domain (§6.2).
//
// Strategies fan out across Config.Workers parallel workers, each owning a
// private clone of the network. Every strategy is measured from the same
// canonical post-baseline state (same virtual clock, reset device flow
// state and port sequence, per-strategy derived fault seed), so the result
// bytes are identical at every worker count and f.Net is never mutated
// mid-fan-out — its clock ends at the latest strategy's virtual end time.
func (f *Fuzzer) Run(strategies []Strategy) *Result {
	if strategies == nil {
		strategies = Strategies()
	}
	res := &Result{
		TestDomain:    f.Config.TestDomain,
		ControlDomain: f.Config.ControlDomain,
		NormalBlocked: make(map[Proto]bool),
	}

	var root *obs.Span
	if f.Config.Parent != nil {
		root = f.Config.Parent.StartChild("cenfuzz.run", f.Net.Now(), obs.L("test", f.Config.TestDomain))
	} else {
		root = f.Config.Tracer.Start("cenfuzz.run", f.Net.Now(), obs.L("test", f.Config.TestDomain))
	}

	basePort := f.Net.PortSeq()
	baseFaults := f.Net.Faults()

	// Normal baselines per protocol, on a clone carrying the network's
	// current state — the canonical prefix every strategy measurement
	// descends from.
	baseNet := f.Net.Clone()
	baseFuzzer := &Fuzzer{Net: baseNet, Client: f.Client, Endpoint: f.Endpoint, Config: f.Config, m: f.m}
	baseline := map[Proto]Measurement{}
	for _, proto := range []Proto{ProtoHTTP, ProtoTLS} {
		normal := normalPayload(proto, f.Config.TestDomain)
		m := baseFuzzer.Measure(normal, proto.Port())
		baseline[proto] = m
		res.NormalBlocked[proto] = m.Outcome.Blocked()
		res.TotalMeasurements++
	}
	postBaseline := baseNet.Now()

	workers := f.Config.Workers
	if workers < 1 {
		workers = 1
	}
	// Worker clones are created serially before the fan-out (Clone freezes
	// the shared geo registry).
	nets := make([]*simnet.Network, workers)
	for w := range nets {
		nets[w] = f.Net.Clone()
	}

	results := make([]StrategyResult, len(strategies))
	counts := make([]int, len(strategies))
	ends := make([]time.Duration, len(strategies))
	parallel.ForEachOpt(len(strategies), workers, parallel.Options{Pool: "cenfuzz.strategies", Obs: f.Config.Obs}, func(w, i int) {
		st := strategies[i]
		n := nets[w]
		span := root.StartChild("cenfuzz.strategy", postBaseline, obs.L("strategy", st.Name))
		n.BeginMeasurement(postBaseline, basePort)
		if baseFaults != nil {
			seed := faults.DeriveSeed(baseFaults.Seed(), "cenfuzz|"+st.Name)
			n.SetFaults(baseFaults.CloneSeeded(seed))
		}
		sf := &Fuzzer{Net: n, Client: f.Client, Endpoint: f.Endpoint, Config: f.Config, m: f.m}
		sr := StrategyResult{Name: st.Name, Category: st.Category, Proto: st.Proto}
		normalBlocked := baseline[st.Proto].Outcome.Blocked()
		for _, perm := range st.Perms() {
			pr := PermResult{Strategy: st.Name, Desc: perm.Desc}
			pr.Control = sf.measurePerm(perm, f.Config.ControlDomain, st.Proto.Port())
			pr.Test = sf.measurePerm(perm, f.Config.TestDomain, st.Proto.Port())
			counts[i] += 2
			pr.Valid = !pr.Control.Outcome.Blocked()
			if pr.Valid && normalBlocked && !pr.Test.Outcome.Blocked() {
				pr.Evaded = true
				pr.Circumvented = pr.Test.ServedContent
			}
			f.m.permDone(pr)
			sr.Perms = append(sr.Perms, pr)
		}
		results[i] = sr
		ends[i] = n.Now()
		span.End(n.Now())
	})
	res.Strategies = results
	maxEnd := postBaseline
	for i := range strategies {
		res.TotalMeasurements += counts[i]
		if ends[i] > maxEnd {
			maxEnd = ends[i]
		}
	}
	if d := maxEnd - f.Net.Now(); d > 0 {
		f.Net.Sleep(d)
	}
	root.End(maxEnd)
	return res
}

// measurePerm measures one permutation for one domain, honoring segmented
// permutations.
func (f *Fuzzer) measurePerm(perm Permutation, domain string, port uint16) Measurement {
	if perm.Segments != nil {
		return f.MeasureSegments(perm.Segments(domain), port)
	}
	return f.Measure(perm.Payload(domain), port)
}

// normalPayload renders the canonical request for a protocol and domain.
func normalPayload(p Proto, domain string) []byte {
	if p == ProtoHTTP {
		return httpgram.NewRequest(domain).Render()
	}
	return tlsgram.NewClientHello(domain).Serialize()
}
