// Package cenfuzz implements CenFuzz, the deterministic censorship request
// fuzzer (§6 of the paper): 16 HTTP request and 8 TLS Client Hello fuzzing
// strategies, each a fixed list of permutations applied identically to the
// Test Domain and a Control Domain, with per-permutation evasion and
// circumvention verdicts. Determinism is the point — the same permutations
// run against every device, so the outcomes form a comparable fingerprint
// (§6: "If the goal is to produce a set of deterministic network
// fingerprints, we need a static set of strategies").
package cenfuzz

import (
	"fmt"

	"cendev/internal/httpgram"
	"cendev/internal/tlsgram"
)

// Proto selects the protocol a strategy fuzzes.
type Proto int

// Strategy protocols.
const (
	ProtoHTTP Proto = iota
	ProtoTLS
)

// String implements fmt.Stringer.
func (p Proto) String() string {
	if p == ProtoHTTP {
		return "HTTP"
	}
	return "HTTPS"
}

// Port returns the TCP port probed for the protocol.
func (p Proto) Port() uint16 {
	if p == ProtoHTTP {
		return 80
	}
	return 443
}

// Permutation is one deterministic request mutation. Exactly one of HTTP,
// TLS, and Segments is non-nil, matching the owning strategy's protocol.
// The builder receives the domain (test or control) and returns the
// mutated request.
type Permutation struct {
	Desc string
	HTTP func(domain string) *httpgram.Request
	TLS  func(domain string) *tlsgram.ClientHello
	// Segments renders a multi-segment send (the TCP segmentation
	// extension strategy); the fuzzer transmits each element as its own
	// TCP segment on one connection.
	Segments func(domain string) [][]byte
}

// Payload renders the permutation's wire bytes for a domain. For
// segmented permutations it returns the concatenated stream (callers that
// need per-segment sends use Segments directly).
func (p Permutation) Payload(domain string) []byte {
	switch {
	case p.HTTP != nil:
		return p.HTTP(domain).Render()
	case p.Segments != nil:
		var out []byte
		for _, seg := range p.Segments(domain) {
			out = append(out, seg...)
		}
		return out
	default:
		return p.TLS(domain).Serialize()
	}
}

// Strategy is one named fuzzing strategy from Table 2.
type Strategy struct {
	// Name matches the labels of Figure 5, e.g. "Get Word Alt.".
	Name string
	// Category is Alternate, Capitalize, Remove, Pad, or Normal.
	Category string
	Proto    Proto
	// Perms generates the strategy's full permutation list.
	Perms func() []Permutation
}

// httpPerm wraps a request mutator into an HTTP permutation.
func httpPerm(desc string, mutate func(r *httpgram.Request)) Permutation {
	return Permutation{
		Desc: desc,
		HTTP: func(domain string) *httpgram.Request {
			r := httpgram.NewRequest(domain)
			mutate(r)
			return r
		},
	}
}

// hostPerm wraps a hostname transformation into an HTTP permutation.
func hostPerm(desc string, transform func(domain string) string) Permutation {
	return Permutation{
		Desc: desc,
		HTTP: func(domain string) *httpgram.Request {
			r := httpgram.NewRequest(transform(domain))
			return r
		},
	}
}

// tlsPerm wraps a Client Hello mutator into a TLS permutation.
func tlsPerm(desc string, mutate func(ch *tlsgram.ClientHello, domain string)) Permutation {
	return Permutation{
		Desc: desc,
		TLS: func(domain string) *tlsgram.ClientHello {
			ch := tlsgram.NewClientHello(domain)
			mutate(ch, domain)
			return ch
		},
	}
}

// tldAlternatives and subdomainAlternatives are the 10-entry lists used by
// the TLD and Subdomain strategies for both HTTP and TLS.
var (
	tldAlternatives       = []string{"net", "org", "info", "biz", "io", "co", "ru", "us", "de", "uk"}
	subdomainAlternatives = []string{"m", "www2", "wiki", "mail", "blog", "dev", "cdn", "shop", "api", "news"}
)

// padCombos are the (leading, trailing) star-pad combinations — 3×3
// including the identity, giving Table 2's 9 permutations.
var padCombos = [][2]int{
	{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}, {2, 0}, {2, 1}, {2, 2},
}

func padHost(host string, lead, trail int) string {
	return repeat("*", lead) + host + repeat("*", trail)
}

func repeat(s string, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += s
	}
	return out
}

// alternateHeaders is the 59-entry header list of the Header Alternate
// strategy: common valid headers, uncommon ones, and invalid ones.
var alternateHeaders = []httpgram.Header{
	{Name: "Connection", Value: "keep-alive"},
	{Name: "Connection", Value: "close"},
	{Name: "User-Agent", Value: "Mozilla/5.0 (Windows NT 10.0; Win64; x64)"},
	{Name: "User-Agent", Value: "curl/7.88.1"},
	{Name: "User-Agent", Value: "xxx"},
	{Name: "Accept", Value: "*/*"},
	{Name: "Accept", Value: "text/html"},
	{Name: "Accept-Language", Value: "en-US,en;q=0.9"},
	{Name: "Accept-Language", Value: "ru-RU"},
	{Name: "Accept-Encoding", Value: "gzip, deflate"},
	{Name: "Accept-Encoding", Value: "identity"},
	{Name: "Accept-Charset", Value: "utf-8"},
	{Name: "Referer", Value: "https://www.google.com/"},
	{Name: "Referer", Value: "http://example.com/"},
	{Name: "Cookie", Value: "session=abc123"},
	{Name: "Cookie", Value: "x=y"},
	{Name: "X-Forwarded-For", Value: "127.0.0.1"},
	{Name: "X-Forwarded-For", Value: "8.8.8.8"},
	{Name: "X-Forwarded-Host", Value: "example.com"},
	{Name: "X-Real-IP", Value: "127.0.0.1"},
	{Name: "Range", Value: "bytes=0-100"},
	{Name: "Range", Value: "bytes=0-"},
	{Name: "If-Modified-Since", Value: "Sat, 29 Oct 1994 19:43:31 GMT"},
	{Name: "If-None-Match", Value: `"abc"`},
	{Name: "Cache-Control", Value: "no-cache"},
	{Name: "Cache-Control", Value: "max-age=0"},
	{Name: "Pragma", Value: "no-cache"},
	{Name: "Upgrade", Value: "h2c"},
	{Name: "Upgrade-Insecure-Requests", Value: "1"},
	{Name: "Via", Value: "1.1 proxy"},
	{Name: "Warning", Value: "199 misc"},
	{Name: "TE", Value: "trailers"},
	{Name: "Expect", Value: "100-continue"},
	{Name: "From", Value: "user@example.com"},
	{Name: "Origin", Value: "http://example.com"},
	{Name: "DNT", Value: "1"},
	{Name: "X-Requested-With", Value: "XMLHttpRequest"},
	{Name: "Authorization", Value: "Basic dXNlcjpwYXNz"},
	{Name: "Proxy-Authorization", Value: "Basic dXNlcjpwYXNz"},
	{Name: "Content-Length", Value: "0"},
	{Name: "Content-Type", Value: "text/plain"},
	{Name: "Transfer-Encoding", Value: "chunked"},
	{Name: "Transfer-Encoding", Value: "identity"},
	{Name: "Date", Value: "Tue, 15 Nov 1994 08:12:31 GMT"},
	{Name: "Max-Forwards", Value: "10"},
	{Name: "Proxy-Connection", Value: "keep-alive"},
	{Name: "X-Custom-Header", Value: "value"},
	{Name: "XXXX", Value: "xxx"},
	{Raw: "X-Broken-No-Colon"},
	{Raw: ": empty-name"},
	{Name: "Host", Value: "www.innocuous.example"}, // duplicate Host
	{Name: "host", Value: "www.innocuous.example"}, // duplicate lowercase host
	{Name: "Accept-Datetime", Value: "Thu, 31 May 2007 20:35:00 GMT"},
	{Name: "Forwarded", Value: "for=192.0.2.60"},
	{Name: "A-IM", Value: "feed"},
	{Name: "If-Range", Value: `"xyz"`},
	{Name: "If-Unmodified-Since", Value: "Sat, 29 Oct 1994 19:43:31 GMT"},
	{Name: "Trailer", Value: "Expires"},
	{Name: "X-Do-Not-Track", Value: "1"},
}

// cipherSuiteList is the 25-suite list of the Cipher Suite strategy.
var cipherSuiteList = []uint16{
	tlsgram.TLS_AES_128_GCM_SHA256,
	tlsgram.TLS_AES_256_GCM_SHA384,
	tlsgram.TLS_CHACHA20_POLY1305_SHA256,
	tlsgram.TLS_AES_128_CCM_SHA256,
	tlsgram.TLS_AES_128_CCM_8_SHA256,
	tlsgram.TLS_RSA_WITH_RC4_128_SHA,
	tlsgram.TLS_RSA_WITH_3DES_EDE_CBC_SHA,
	tlsgram.TLS_RSA_WITH_AES_128_CBC_SHA,
	tlsgram.TLS_RSA_WITH_AES_256_CBC_SHA,
	tlsgram.TLS_RSA_WITH_AES_128_CBC_SHA256,
	tlsgram.TLS_RSA_WITH_AES_256_CBC_SHA256,
	tlsgram.TLS_RSA_WITH_AES_128_GCM_SHA256,
	tlsgram.TLS_RSA_WITH_AES_256_GCM_SHA384,
	tlsgram.TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA,
	tlsgram.TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA,
	tlsgram.TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA,
	tlsgram.TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA,
	tlsgram.TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA256,
	tlsgram.TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA384,
	tlsgram.TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA256,
	tlsgram.TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA384,
	tlsgram.TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256,
	tlsgram.TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384,
	tlsgram.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
	tlsgram.TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384,
}

// tlsVersions are the four versions the Min/Max Version strategies sweep.
var tlsVersions = []uint16{
	tlsgram.VersionTLS10, tlsgram.VersionTLS11, tlsgram.VersionTLS12, tlsgram.VersionTLS13,
}

// Strategies returns the full catalog of Table 2, in table order, prefixed
// by the Normal pseudo-strategies (one per protocol) that Figure 5 reports
// alongside the fuzzing strategies.
func Strategies() []Strategy {
	return append(normalStrategies(), append(httpStrategies(), tlsStrategies()...)...)
}

func normalStrategies() []Strategy {
	return []Strategy{
		{
			Name: "Normal", Category: "Normal", Proto: ProtoHTTP,
			Perms: func() []Permutation {
				return []Permutation{httpPerm("canonical GET", func(*httpgram.Request) {})}
			},
		},
	}
}

// httpStrategies returns the 16 HTTP strategies of Table 2.
func httpStrategies() []Strategy {
	return []Strategy{
		{
			Name: "Get Word Alt.", Category: "Alternate", Proto: ProtoHTTP,
			Perms: func() []Permutation {
				words := []string{"POST", "PUT", "PATCH", "DELETE", "XXXX", ""}
				out := make([]Permutation, 0, len(words))
				for _, w := range words {
					w := w
					out = append(out, httpPerm("method="+quoted(w), func(r *httpgram.Request) { r.Method = w }))
				}
				return out
			},
		},
		{
			Name: "Http Word Alt.", Category: "Alternate", Proto: ProtoHTTP,
			Perms: func() []Permutation {
				words := []string{
					"HTTP/1.0", "HTTP/1.2", "HTTP/2", "HTTP/3", "HTTP/9", "HTTP/0.9",
					"HTTP/ 1.1", "HTTP /1.1", "http/1.1", "XXXX/1.1", "HTTPS/1.1",
					"HTP/1.1", `HTTP\1.1`, "HTTP//1.1", "HTTP/1.1.1", "",
				}
				out := make([]Permutation, 0, len(words))
				for _, w := range words {
					w := w
					out = append(out, httpPerm("version="+quoted(w), func(r *httpgram.Request) { r.Version = w }))
				}
				return out
			},
		},
		{
			Name: "Host Word Alt.", Category: "Alternate", Proto: ProtoHTTP,
			Perms: func() []Permutation {
				words := []string{"HostHeader:", "XXXX:", "Host :", "Host;", "Hostname:", "H0st:", ""}
				out := make([]Permutation, 0, len(words))
				for _, w := range words {
					w := w
					out = append(out, httpPerm("hostword="+quoted(w), func(r *httpgram.Request) { r.HostWord = w }))
				}
				return out
			},
		},
		{
			Name: "Path Alt.", Category: "Alternate", Proto: ProtoHTTP,
			Perms: func() []Permutation {
				paths := []string{"?", "z", "//", "/index.html", "*", "/.", "/%2e", `\`}
				out := make([]Permutation, 0, len(paths))
				for _, p := range paths {
					p := p
					out = append(out, httpPerm("path="+quoted(p), func(r *httpgram.Request) { r.Path = p }))
				}
				return out
			},
		},
		{
			Name: "Hostname Alt.", Category: "Alternate", Proto: ProtoHTTP,
			Perms: func() []Permutation {
				return []Permutation{
					hostPerm("reversed hostname", reverseString),
					hostPerm("repeated hostname", func(d string) string { return d + d }),
					hostPerm("empty hostname", func(string) string { return "" }),
					httpPerm("omit host line", func(r *httpgram.Request) { r.OmitHostLine = true }),
					hostPerm("unrelated hostname", func(string) string { return "www.innocuous.example" }),
				}
			},
		},
		{
			Name: "Hostname TLD Alt.", Category: "Alternate", Proto: ProtoHTTP,
			Perms: func() []Permutation {
				out := make([]Permutation, 0, len(tldAlternatives))
				for _, tld := range tldAlternatives {
					tld := tld
					out = append(out, hostPerm("tld="+tld, func(d string) string { return swapTLD(d, tld) }))
				}
				return out
			},
		},
		{
			Name: "Host. Subdomain Alt.", Category: "Alternate", Proto: ProtoHTTP,
			Perms: func() []Permutation {
				out := make([]Permutation, 0, len(subdomainAlternatives))
				for _, sub := range subdomainAlternatives {
					sub := sub
					out = append(out, hostPerm("subdomain="+sub, func(d string) string { return swapSubdomain(d, sub) }))
				}
				return out
			},
		},
		{
			Name: "Header Alt.", Category: "Alternate", Proto: ProtoHTTP,
			Perms: func() []Permutation {
				out := make([]Permutation, 0, len(alternateHeaders))
				for i, h := range alternateHeaders {
					h := h
					desc := h.Name
					if desc == "" {
						desc = quoted(h.Raw)
					}
					out = append(out, httpPerm(fmt.Sprintf("header[%d]=%s", i, desc),
						func(r *httpgram.Request) { r.Headers = append(r.Headers, h) }))
				}
				return out
			},
		},
		{
			Name: "Get Word Cap.", Category: "Capitalize", Proto: ProtoHTTP,
			Perms: func() []Permutation {
				out := []Permutation{}
				for _, w := range caseMasks("GET") {
					w := w
					out = append(out, httpPerm("method="+w, func(r *httpgram.Request) { r.Method = w }))
				}
				return out
			},
		},
		{
			Name: "Http Word Cap.", Category: "Capitalize", Proto: ProtoHTTP,
			Perms: func() []Permutation {
				out := []Permutation{}
				for _, w := range caseMasks("HTTP") {
					w := w
					out = append(out, httpPerm("version="+w+"/1.1", func(r *httpgram.Request) { r.Version = w + "/1.1" }))
				}
				return out
			},
		},
		{
			Name: "Host Word Cap.", Category: "Capitalize", Proto: ProtoHTTP,
			Perms: func() []Permutation {
				out := []Permutation{}
				for _, w := range caseMasks("Host") {
					w := w
					out = append(out, httpPerm("hostword="+w+":", func(r *httpgram.Request) { r.HostWord = w + ":" }))
				}
				return out
			},
		},
		{
			Name: "Get Word Rem.", Category: "Remove", Proto: ProtoHTTP,
			Perms: func() []Permutation {
				out := []Permutation{}
				for _, w := range distinctSubsequences("GET") {
					w := w
					out = append(out, httpPerm("method="+quoted(w), func(r *httpgram.Request) { r.Method = w }))
				}
				return out
			},
		},
		{
			Name: "Http Word Rem.", Category: "Remove", Proto: ProtoHTTP,
			Perms: func() []Permutation {
				out := []Permutation{}
				for _, w := range distinctSubsequences("HTTP/1.1") {
					w := w
					out = append(out, httpPerm("version="+quoted(w), func(r *httpgram.Request) { r.Version = w }))
				}
				return out
			},
		},
		{
			Name: "Host Word Rem.", Category: "Remove", Proto: ProtoHTTP,
			Perms: func() []Permutation {
				out := []Permutation{}
				// "Host: " including the separating space; the rendered
				// request adds no extra space for these permutations.
				for _, w := range distinctSubsequences("Host: ") {
					w := w
					out = append(out, Permutation{
						Desc: "hostline=" + quoted(w),
						HTTP: func(domain string) *httpgram.Request {
							r := httpgram.NewRequest(domain)
							r.OmitHostLine = true
							r.Headers = append(r.Headers, httpgram.Header{Raw: w + domain})
							return r
						},
					})
				}
				return out
			},
		},
		{
			Name: "Http Delimiter Rem.", Category: "Remove", Proto: ProtoHTTP,
			Perms: func() []Permutation {
				out := []Permutation{}
				for _, d := range distinctSubsequences("\r\n") {
					d := d
					out = append(out, httpPerm("delimiter="+quoted(d), func(r *httpgram.Request) { r.Delimiter = d }))
				}
				return out
			},
		},
		{
			Name: "Hostname Pad.", Category: "Pad", Proto: ProtoHTTP,
			Perms: func() []Permutation {
				out := []Permutation{}
				for _, combo := range padCombos {
					combo := combo
					out = append(out, hostPerm(fmt.Sprintf("pad=%d/%d", combo[0], combo[1]),
						func(d string) string { return padHost(d, combo[0], combo[1]) }))
				}
				return out
			},
		},
	}
}

// tlsStrategies returns the 8 HTTPS strategies of Table 2.
func tlsStrategies() []Strategy {
	return []Strategy{
		{
			Name: "Min Version Alt.", Category: "Alternate", Proto: ProtoTLS,
			Perms: func() []Permutation {
				out := []Permutation{}
				for _, v := range tlsVersions {
					v := v
					out = append(out, tlsPerm("min="+tlsgram.VersionName(v),
						func(ch *tlsgram.ClientHello, _ string) {
							max := uint16(tlsgram.VersionTLS13)
							if v > max {
								max = v
							}
							ch.SetSupportedVersions(v, max)
						}))
				}
				return out
			},
		},
		{
			Name: "Max Version Alt.", Category: "Alternate", Proto: ProtoTLS,
			Perms: func() []Permutation {
				out := []Permutation{}
				for _, v := range tlsVersions {
					v := v
					out = append(out, tlsPerm("max="+tlsgram.VersionName(v),
						func(ch *tlsgram.ClientHello, _ string) {
							ch.SetSupportedVersions(tlsgram.VersionTLS10, v)
							if v < tlsgram.VersionTLS13 {
								ch.LegacyVersion = v
							}
						}))
				}
				return out
			},
		},
		{
			Name: "CipherSuite Alt.", Category: "Alternate", Proto: ProtoTLS,
			Perms: func() []Permutation {
				out := []Permutation{}
				for _, cs := range cipherSuiteList {
					cs := cs
					out = append(out, tlsPerm("suite="+tlsgram.CipherSuiteNames[cs],
						func(ch *tlsgram.ClientHello, _ string) {
							ch.CipherSuites = []uint16{cs}
						}))
				}
				return out
			},
		},
		{
			Name: "Client Certificate Alt.", Category: "Alternate", Proto: ProtoTLS,
			Perms: func() []Permutation {
				return []Permutation{
					tlsPerm("cert for requested domain", func(ch *tlsgram.ClientHello, d string) {
						ch.SetClientCertHint("CN=" + d)
					}),
					tlsPerm("cert for other domain", func(ch *tlsgram.ClientHello, _ string) {
						ch.SetClientCertHint("CN=www.test.com")
					}),
					tlsPerm("empty cert", func(ch *tlsgram.ClientHello, _ string) {
						ch.SetClientCertHint("CN=")
					}),
				}
			},
		},
		{
			Name: "SNI Alt.", Category: "Alternate", Proto: ProtoTLS,
			Perms: func() []Permutation {
				return []Permutation{
					tlsPerm("reversed SNI", func(ch *tlsgram.ClientHello, d string) { ch.SetSNI(reverseString(d)) }),
					tlsPerm("empty SNI", func(ch *tlsgram.ClientHello, _ string) { ch.SetSNI("") }),
					tlsPerm("omit SNI extension", func(ch *tlsgram.ClientHello, _ string) {
						ch.RemoveExtension(tlsgram.ExtServerName)
					}),
					tlsPerm("repeated SNI", func(ch *tlsgram.ClientHello, d string) { ch.SetSNI(d + d) }),
				}
			},
		},
		{
			Name: "SNI TLD Alt.", Category: "Alternate", Proto: ProtoTLS,
			Perms: func() []Permutation {
				out := []Permutation{}
				for _, tld := range tldAlternatives {
					tld := tld
					out = append(out, tlsPerm("tld="+tld, func(ch *tlsgram.ClientHello, d string) {
						ch.SetSNI(swapTLD(d, tld))
					}))
				}
				return out
			},
		},
		{
			Name: "SNI Subdomain Alt.", Category: "Alternate", Proto: ProtoTLS,
			Perms: func() []Permutation {
				out := []Permutation{}
				for _, sub := range subdomainAlternatives {
					sub := sub
					out = append(out, tlsPerm("subdomain="+sub, func(ch *tlsgram.ClientHello, d string) {
						ch.SetSNI(swapSubdomain(d, sub))
					}))
				}
				return out
			},
		},
		{
			Name: "SNI Pad.", Category: "Pad", Proto: ProtoTLS,
			Perms: func() []Permutation {
				out := []Permutation{}
				for _, combo := range padCombos {
					combo := combo
					out = append(out, tlsPerm(fmt.Sprintf("pad=%d/%d", combo[0], combo[1]),
						func(ch *tlsgram.ClientHello, d string) {
							ch.SetSNI(padHost(d, combo[0], combo[1]))
						}))
				}
				return out
			},
		},
	}
}

func quoted(s string) string { return fmt.Sprintf("%q", s) }

// tlsRecordSplitStrategy splits the Client Hello bytes across TCP
// segments: per-packet DPI engines fail to parse either fragment as a
// hello and are evaded; reassembling engines still catch it.
func tlsRecordSplitStrategy() Strategy {
	return Strategy{
		Name: "TLS Record Split", Category: "Extension", Proto: ProtoTLS,
		Perms: func() []Permutation {
			offsets := []int{5, 16, 40}
			out := make([]Permutation, 0, len(offsets))
			for _, off := range offsets {
				off := off
				out = append(out, Permutation{
					Desc: fmt.Sprintf("split@%d", off),
					Segments: func(domain string) [][]byte {
						raw := tlsgram.NewClientHello(domain).Serialize()
						cut := off
						if cut >= len(raw) {
							cut = len(raw) / 2
						}
						return [][]byte{raw[:cut], raw[cut:]}
					},
				})
			}
			return out
		},
	}
}

// ExtensionStrategies returns strategies beyond the paper's Table 2
// catalog; Strategies() deliberately excludes them so the Table 2
// permutation counts stay exact. Currently: TCP segmentation, the
// Geneva/SymTCP evasion class, splitting the request at several offsets
// inside the Host header so no single segment carries the full trigger.
func ExtensionStrategies() []Strategy {
	return []Strategy{
		tlsRecordSplitStrategy(),
		{
			Name: "Segmentation", Category: "Extension", Proto: ProtoHTTP,
			Perms: func() []Permutation {
				// Split points measured back from the end of the rendered
				// request, landing inside the hostname.
				offsets := []int{4, 8, 12, 16}
				out := make([]Permutation, 0, len(offsets))
				for _, off := range offsets {
					off := off
					out = append(out, Permutation{
						Desc: fmt.Sprintf("split@-%d", off),
						Segments: func(domain string) [][]byte {
							req := httpgram.NewRequest(domain).Render()
							cut := len(req) - off
							if cut < 1 {
								cut = 1
							}
							return [][]byte{req[:cut], req[cut:]}
						},
					})
				}
				return out
			},
		},
	}
}
