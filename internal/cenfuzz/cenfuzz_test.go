package cenfuzz

import (
	"net/netip"
	"strings"
	"testing"

	"cendev/internal/endpoint"
	"cendev/internal/middlebox"
	"cendev/internal/simnet"
	"cendev/internal/topology"
)

const (
	blockedDomain = "www.blocked.example"
	controlDomain = "www.control.example"
)

// TestTable2PermutationCounts pins every strategy's permutation count to
// the NP column of Table 2.
func TestTable2PermutationCounts(t *testing.T) {
	want := map[string]int{
		"Get Word Alt.":           6,
		"Http Word Alt.":          16,
		"Host Word Alt.":          7,
		"Path Alt.":               8,
		"Hostname Alt.":           5,
		"Hostname TLD Alt.":       10,
		"Host. Subdomain Alt.":    10,
		"Header Alt.":             59,
		"Get Word Cap.":           8,
		"Http Word Cap.":          16,
		"Host Word Cap.":          16,
		"Get Word Rem.":           7,
		"Http Word Rem.":          167,
		"Host Word Rem.":          63,
		"Http Delimiter Rem.":     3,
		"Hostname Pad.":           9,
		"Min Version Alt.":        4,
		"Max Version Alt.":        4,
		"CipherSuite Alt.":        25,
		"Client Certificate Alt.": 3,
		"SNI Alt.":                4,
		"SNI TLD Alt.":            10,
		"SNI Subdomain Alt.":      10,
		"SNI Pad.":                9,
		"Normal":                  1,
	}
	got := map[string]int{}
	httpCount, tlsCount := 0, 0
	for _, st := range Strategies() {
		got[st.Name] = len(st.Perms())
		if st.Category != "Normal" {
			if st.Proto == ProtoHTTP {
				httpCount++
			} else {
				tlsCount++
			}
		}
	}
	for name, np := range want {
		if got[name] != np {
			t.Errorf("strategy %q: NP = %d, want %d", name, got[name], np)
		}
	}
	if len(got) != len(want) {
		t.Errorf("catalog has %d strategies, want %d", len(got), len(want))
	}
	if httpCount != 16 || tlsCount != 8 {
		t.Errorf("strategy counts: HTTP=%d TLS=%d, want 16/8 (§6)", httpCount, tlsCount)
	}
}

func TestDistinctSubsequences(t *testing.T) {
	cases := map[string]int{
		"GET":      7,
		"HTTP/1.1": 167,
		"Host: ":   63,
		"\r\n":     3,
	}
	for s, want := range cases {
		subs := distinctSubsequences(s)
		if len(subs) != want {
			t.Errorf("distinctSubsequences(%q) = %d entries, want %d", s, len(subs), want)
		}
		seen := map[string]bool{}
		for _, sub := range subs {
			if sub == s {
				t.Errorf("%q: full string included", s)
			}
			if seen[sub] {
				t.Errorf("%q: duplicate %q", s, sub)
			}
			seen[sub] = true
		}
	}
}

func TestCaseMasks(t *testing.T) {
	masks := caseMasks("GET")
	if len(masks) != 8 {
		t.Fatalf("caseMasks(GET) = %d, want 8", len(masks))
	}
	found := map[string]bool{}
	for _, m := range masks {
		found[m] = true
	}
	for _, want := range []string{"GET", "get", "GeT", "gEt"} {
		if !found[want] {
			t.Errorf("mask %q missing", want)
		}
	}
	if len(caseMasks("Host")) != 16 {
		t.Error("caseMasks(Host) != 16")
	}
}

func TestHostnameHelpers(t *testing.T) {
	if got := reverseString("abc.de"); got != "ed.cba" {
		t.Errorf("reverseString = %q", got)
	}
	if got := swapTLD("www.example.com", "net"); got != "www.example.net" {
		t.Errorf("swapTLD = %q", got)
	}
	if got := swapSubdomain("www.example.com", "m"); got != "m.example.com" {
		t.Errorf("swapSubdomain = %q", got)
	}
	if got := swapSubdomain("example.com", "m"); got != "m.example.com" {
		t.Errorf("swapSubdomain two-label = %q", got)
	}
	if got := padHost("x.com", 2, 1); got != "**x.com*" {
		t.Errorf("padHost = %q", got)
	}
}

// buildNet returns a 3-router network with a device of the given vendor on
// the middle link and a wildcard+tolerant server for circumvention checks.
func buildNet(t *testing.T, vendor middlebox.Vendor) (*simnet.Network, *Fuzzer) {
	t.Helper()
	g := topology.NewGraph()
	asC := g.AddAS(100, "ClientNet", "US")
	asE := g.AddAS(300, "EndpointNet", "KZ")
	r1 := g.AddRouter("r1", asC)
	g.AddRouter("r2", asE)
	r3 := g.AddRouter("r3", asE)
	g.Link("r1", "r2")
	g.Link("r2", "r3")
	client := g.AddHost("client", asC, r1)
	server := g.AddHost("server", asE, r3)
	n := simnet.New(g)
	srv := endpoint.NewServer(blockedDomain, controlDomain)
	srv.WildcardSubdomains = true
	srv.TolerantPadding = true
	n.RegisterServer("server", srv)
	if vendor != "" {
		dev := middlebox.NewDevice("d", vendor, []string{blockedDomain}, g.Router("r2").Addr)
		n.AttachDevice("r1", "r2", dev)
	}
	fz := New(n, client, server, Config{TestDomain: blockedDomain, ControlDomain: controlDomain})
	return n, fz
}

// runStrategy executes one named strategy against a fresh fuzzer.
func runStrategy(t *testing.T, vendor middlebox.Vendor, name string) *StrategyResult {
	t.Helper()
	_, fz := buildNet(t, vendor)
	var sts []Strategy
	for _, st := range Strategies() {
		if st.Name == name {
			sts = append(sts, st)
		}
	}
	if len(sts) != 1 {
		t.Fatalf("strategy %q not found", name)
	}
	res := fz.Run(sts)
	return res.Strategy(name)
}

func TestNormalRequestBlocked(t *testing.T) {
	_, fz := buildNet(t, middlebox.VendorCisco)
	res := fz.Run([]Strategy{})
	if !res.NormalBlocked[ProtoHTTP] {
		t.Error("normal HTTP request should be blocked")
	}
	if !res.NormalBlocked[ProtoTLS] {
		t.Error("normal TLS request should be blocked")
	}
}

func TestNormalRequestUnblockedWithoutDevice(t *testing.T) {
	_, fz := buildNet(t, "")
	res := fz.Run([]Strategy{})
	if res.NormalBlocked[ProtoHTTP] || res.NormalBlocked[ProtoTLS] {
		t.Errorf("no device but NormalBlocked = %v", res.NormalBlocked)
	}
}

func TestGetWordAltAgainstCisco(t *testing.T) {
	sr := runStrategy(t, middlebox.VendorCisco, "Get Word Alt.")
	// Cisco profile triggers on GET/POST/PUT/HEAD: PATCH, DELETE, XXXX and
	// the empty method evade; POST and PUT do not.
	wantEvaded := map[string]bool{
		`method="POST"`: false, `method="PUT"`: false,
		`method="PATCH"`: true, `method="DELETE"`: true,
		`method="XXXX"`: true, `method=""`: true,
	}
	for _, p := range sr.Perms {
		want, ok := wantEvaded[p.Desc]
		if !ok {
			t.Errorf("unexpected permutation %q", p.Desc)
			continue
		}
		if !p.Valid {
			t.Errorf("%s: invalid (control blocked?)", p.Desc)
			continue
		}
		if p.Evaded != want {
			t.Errorf("%s: evaded = %v, want %v", p.Desc, p.Evaded, want)
		}
	}
	if got := sr.SuccessRate(); got < 0.5 || got > 0.8 {
		t.Errorf("success rate = %.2f, want 4/6", got)
	}
}

func TestGetWordAltAgainstFortinet(t *testing.T) {
	// The substring-scanning Fortinet profile ignores the method entirely:
	// nothing in this strategy evades it.
	sr := runStrategy(t, middlebox.VendorFortinet, "Get Word Alt.")
	if got := sr.SuccessRate(); got != 0 {
		t.Errorf("success rate = %.2f, want 0", got)
	}
}

func TestCapitalizeRarelyEvades(t *testing.T) {
	// Devices fold method case (§6.3), so Get Word Cap. should not evade.
	sr := runStrategy(t, middlebox.VendorCisco, "Get Word Cap.")
	if got := sr.SuccessRate(); got != 0 {
		t.Errorf("Get Word Cap. success = %.2f, want 0", got)
	}
	// But Host Word Cap. evades exact-host-word parsers (all masks except
	// the canonical "Host").
	hr := runStrategy(t, middlebox.VendorCisco, "Host Word Cap.")
	if got := hr.SuccessRate(); got < 0.9 {
		t.Errorf("Host Word Cap. vs exact-word parser = %.2f, want 15/16", got)
	}
	// ...and not case-insensitive parsers.
	kr := runStrategy(t, middlebox.VendorKerio, "Host Word Cap.")
	if got := kr.SuccessRate(); got != 0 {
		t.Errorf("Host Word Cap. vs case-insensitive parser = %.2f, want 0", got)
	}
}

func TestHostWordRemoveEvadesBroadly(t *testing.T) {
	// "Removing parts of the Host Word evades devices more than 91.3% of
	// the time" (§6.3). Against a case-insensitive-host-word device, every
	// truncation except the canonical "Host:"-with-space forms evades.
	sr := runStrategy(t, middlebox.VendorKerio, "Host Word Rem.")
	if got := sr.SuccessRate(); got < 0.9 {
		t.Errorf("Host Word Rem. success = %.2f, want > 0.9", got)
	}
}

func TestPaddingAsymmetry(t *testing.T) {
	// Suffix-matching (leading-wildcard) rules block leading pads but miss
	// trailing pads (§6.3). Kerio uses MatchSuffix on the full hostname.
	sr := runStrategy(t, middlebox.VendorKerio, "Hostname Pad.")
	for _, p := range sr.Perms {
		wantEvade := strings.Contains(p.Desc, "/1") || strings.Contains(p.Desc, "/2") // any trailing pad
		if p.Evaded != wantEvade {
			t.Errorf("%s: evaded = %v, want %v", p.Desc, p.Evaded, wantEvade)
		}
	}
	// Contains-matching devices (DDoSGuard) are not evaded by any padding.
	dr := runStrategy(t, middlebox.VendorDDoSGuard, "Hostname Pad.")
	if got := dr.SuccessRate(); got != 0 {
		t.Errorf("padding vs contains-matcher = %.2f, want 0", got)
	}
}

func TestTLDVsKeywordMatcher(t *testing.T) {
	// Keyword-matching devices (Kaspersky) catch even TLD changes.
	sr := runStrategy(t, middlebox.VendorKaspersky, "Hostname TLD Alt.")
	if got := sr.SuccessRate(); got != 0 {
		t.Errorf("TLD alt vs keyword matcher = %.2f, want 0", got)
	}
	// Exact matchers miss all of them.
	cr := runStrategy(t, middlebox.VendorCisco, "Hostname TLD Alt.")
	if got := cr.SuccessRate(); got != 1 {
		t.Errorf("TLD alt vs exact matcher = %.2f, want 1", got)
	}
}

func TestSubdomainCircumvention(t *testing.T) {
	// Wildcard-vhost servers serve subdomain variants, so evasion becomes
	// circumvention (the dailymotion case, §6.3). Cisco matches the exact
	// hostname, so subdomain variants evade it.
	sr := runStrategy(t, middlebox.VendorCisco, "Host. Subdomain Alt.")
	if got := sr.SuccessRate(); got != 1 {
		t.Fatalf("subdomain alt success = %.2f, want 1", got)
	}
	if got := sr.CircumventionRate(); got != 1 {
		t.Errorf("subdomain alt circumvention = %.2f, want 1 (wildcard server)", got)
	}
	// TLD variants evade but do NOT circumvent: the server 403s them.
	tr := runStrategy(t, middlebox.VendorCisco, "Hostname TLD Alt.")
	if got := tr.CircumventionRate(); got != 0 {
		t.Errorf("TLD alt circumvention = %.2f, want 0", got)
	}
}

func TestTLSVersionEvasion(t *testing.T) {
	// Palo Alto's TLS parser window is 1.1–1.2: a pure TLS 1.0 hello falls
	// below it and a pure TLS 1.3 hello above it, reproducing "setting the
	// TLS Version to 1.0 or 1.3" evasion (§6.3).
	sr := runStrategy(t, middlebox.VendorPaloAlto, "Max Version Alt.")
	byDesc := map[string]bool{}
	for _, p := range sr.Perms {
		byDesc[p.Desc] = p.Evaded
	}
	if !byDesc["max=TLS1.0"] {
		t.Error("max=TLS1.0 should evade a 1.1-min parser")
	}
	if byDesc["max=TLS1.2"] || byDesc["max=TLS1.3"] {
		t.Error("ranges intersecting the parser window should not evade")
	}
	mr := runStrategy(t, middlebox.VendorPaloAlto, "Min Version Alt.")
	byDesc = map[string]bool{}
	for _, p := range mr.Perms {
		byDesc[p.Desc] = p.Evaded
	}
	if !byDesc["min=TLS1.3"] {
		t.Error("min=TLS1.3 (pure 1.3 hello) should evade a 1.2-max parser")
	}
	if byDesc["min=TLS1.0"] || byDesc["min=TLS1.2"] {
		t.Error("ranges intersecting the parser window should not evade")
	}
}

func TestSNIStrategiesMirrorHostname(t *testing.T) {
	sr := runStrategy(t, middlebox.VendorKerio, "SNI Pad.")
	trailing, leading := 0, 0
	for _, p := range sr.Perms {
		hasTrailing := strings.HasSuffix(p.Desc, "/1") || strings.HasSuffix(p.Desc, "/2")
		if p.Evaded && hasTrailing {
			trailing++
		}
		if p.Evaded && !hasTrailing {
			leading++
		}
	}
	if trailing != 6 || leading != 0 {
		t.Errorf("SNI pad evasions: trailing=%d leading=%d, want 6/0", trailing, leading)
	}
}

func TestSNIAltEvasions(t *testing.T) {
	sr := runStrategy(t, middlebox.VendorKerio, "SNI Alt.")
	// Reversed, empty, and omitted SNIs evade a suffix matcher; a repeated
	// SNI (domaindomain) still ends with the domain and is caught.
	wantEvaded := map[string]bool{
		"reversed SNI": true, "empty SNI": true,
		"omit SNI extension": true, "repeated SNI": false,
	}
	for _, p := range sr.Perms {
		if !p.Valid {
			t.Errorf("%s: invalid", p.Desc)
			continue
		}
		if want := wantEvaded[p.Desc]; p.Evaded != want {
			t.Errorf("%s: evaded = %v, want %v", p.Desc, p.Evaded, want)
		}
	}
}

func TestCipherSuiteQuirkEvasion(t *testing.T) {
	n, fz := buildNet(t, "")
	dev := middlebox.NewDevice("d", middlebox.VendorKerio, []string{blockedDomain}, netip.Addr{})
	dev.Quirks.TLS.RequireKnownSuite = map[uint16]bool{}
	for _, cs := range cipherSuiteList[:5] { // parses only the TLS 1.3 suites
		dev.Quirks.TLS.RequireKnownSuite[cs] = true
	}
	n.AttachDevice("r1", "r2", dev)
	var st []Strategy
	for _, s := range Strategies() {
		if s.Name == "CipherSuite Alt." {
			st = append(st, s)
		}
	}
	res := fz.Run(st)
	sr := res.Strategy("CipherSuite Alt.")
	rate := sr.SuccessRate()
	if rate < 0.7 || rate == 1 {
		t.Errorf("cipher-suite evasion rate = %.2f, want most-but-not-all (legacy suites evade)", rate)
	}
}

func TestFullRunBookkeeping(t *testing.T) {
	_, fz := buildNet(t, middlebox.VendorCisco)
	res := fz.Run(nil)
	if len(res.Strategies) != 25 { // Normal + 16 HTTP + 8 TLS
		t.Errorf("strategies = %d, want 25", len(res.Strategies))
	}
	wantMeasurements := 2 // protocol baselines
	for _, st := range Strategies() {
		wantMeasurements += 2 * len(st.Perms())
	}
	if res.TotalMeasurements != wantMeasurements {
		t.Errorf("TotalMeasurements = %d, want %d", res.TotalMeasurements, wantMeasurements)
	}
	evaded := res.EvadedStrategies(0.5)
	if len(evaded) == 0 {
		t.Error("no strategy evaded the Cisco profile at >50%")
	}
	if res.Strategy("nope") != nil {
		t.Error("unknown strategy lookup should return nil")
	}
}

func TestOutcomeStringers(t *testing.T) {
	if OutcomeBlockedRST.String() != "blocked-rst" || OutcomeOK.String() != "ok" {
		t.Error("Outcome.String broken")
	}
	if !OutcomeBlockedDrop.Blocked() || OutcomeOK.Blocked() {
		t.Error("Blocked() broken")
	}
	if ProtoTLS.String() != "HTTPS" || ProtoHTTP.Port() != 80 {
		t.Error("Proto helpers broken")
	}
}

func TestSegmentationExtensionStrategy(t *testing.T) {
	ext := ExtensionStrategies()
	if len(ext) != 2 {
		t.Fatalf("extension catalog = %d strategies, want 2", len(ext))
	}
	byName := map[string]Strategy{}
	for _, st := range ext {
		byName[st.Name] = st
	}
	if len(byName["Segmentation"].Perms()) != 4 {
		t.Fatalf("segmentation permutations = %d, want 4", len(byName["Segmentation"].Perms()))
	}
	if len(byName["TLS Record Split"].Perms()) != 3 {
		t.Fatalf("TLS record split permutations = %d, want 3", len(byName["TLS Record Split"].Perms()))
	}
	// Against a per-packet engine (Cisco profile) every split inside the
	// hostname evades; against a reassembling engine (Fortinet) none do.
	_, fz := buildNet(t, middlebox.VendorCisco)
	res := fz.Run(ExtensionStrategies())
	sr := res.Strategy("Segmentation")
	if got := sr.SuccessRate(); got != 1 {
		t.Errorf("segmentation vs per-packet engine = %.2f, want 1", got)
	}
	if got := sr.CircumventionRate(); got != 1 {
		t.Errorf("segmentation circumvention = %.2f, want 1 (server reassembles)", got)
	}
	_, fz2 := buildNet(t, middlebox.VendorFortinet)
	res2 := fz2.Run(ExtensionStrategies())
	if got := res2.Strategy("Segmentation").SuccessRate(); got != 0 {
		t.Errorf("segmentation vs reassembling engine = %.2f, want 0", got)
	}
}

func TestTLSRecordSplitExtension(t *testing.T) {
	var split []Strategy
	for _, st := range ExtensionStrategies() {
		if st.Name == "TLS Record Split" {
			split = append(split, st)
		}
	}
	// Per-packet engine (Kerio) is evaded; reassembling engine (Palo Alto,
	// with a TLS window covering the canonical hello) is not.
	_, fz := buildNet(t, middlebox.VendorKerio)
	res := fz.Run(split)
	if got := res.Strategy("TLS Record Split").SuccessRate(); got != 1 {
		t.Errorf("record split vs per-packet engine = %.2f, want 1", got)
	}
	_, fz2 := buildNet(t, middlebox.VendorFortinet)
	res2 := fz2.Run(split)
	if got := res2.Strategy("TLS Record Split").SuccessRate(); got != 0 {
		t.Errorf("record split vs reassembling engine = %.2f, want 0", got)
	}
}
