package cenfuzz

// Service job entrypoint: internal/serve dispatches CenFuzz jobs onto
// clone-isolated networks through RunJob, which distills the full Result
// into a canonical JSON-stable payload (fixed field order, sorted
// protocols, no timing) so identical specs yield identical bytes.

import (
	"fmt"
	"sort"

	"cendev/internal/simnet"
	"cendev/internal/topology"
)

// JobSpec parameterizes one service-dispatched CenFuzz run.
type JobSpec struct {
	TestDomain    string
	ControlDomain string
	// Strategy restricts the run to one named strategy; empty runs the
	// full Table 2 catalog.
	Strategy string
	// Extensions appends the extension strategies (segmentation, TLS
	// record split).
	Extensions bool
	Workers    int
}

// StrategyPayload is one strategy row in a fuzz job payload.
type StrategyPayload struct {
	Strategy      string  `json:"strategy"`
	Category      string  `json:"category"`
	Protocol      string  `json:"protocol"`
	Permutations  int     `json:"permutations"`
	Evasion       float64 `json:"evasion_rate"`
	Circumvention float64 `json:"circumvention_rate"`
}

// JobResult is the canonical payload of one CenFuzz job.
type JobResult struct {
	TestDomain    string            `json:"test_domain"`
	ControlDomain string            `json:"control_domain"`
	NormalBlocked map[string]bool   `json:"normal_blocked"`
	Measurements  int               `json:"measurements"`
	Strategies    []StrategyPayload `json:"strategies"`
}

// RunJob executes the spec's strategies against ep on n and returns the
// canonical payload. The caller owns n — the run mutates its clock and
// device state. An unknown strategy name is an error.
func RunJob(n *simnet.Network, client, ep *topology.Host, spec JobSpec) (JobResult, error) {
	var strategies []Strategy
	if spec.Strategy != "" {
		for _, st := range Strategies() {
			if st.Name == spec.Strategy {
				strategies = append(strategies, st)
			}
		}
		for _, st := range ExtensionStrategies() {
			if st.Name == spec.Strategy {
				strategies = append(strategies, st)
			}
		}
		if len(strategies) == 0 {
			return JobResult{}, fmt.Errorf("cenfuzz: unknown strategy %q", spec.Strategy)
		}
	} else if spec.Extensions {
		strategies = append(Strategies(), ExtensionStrategies()...)
	}
	res := New(n, client, ep, Config{
		TestDomain:    spec.TestDomain,
		ControlDomain: spec.ControlDomain,
		Workers:       spec.Workers,
		Obs:           n.Obs(),
	}).Run(strategies)

	out := JobResult{
		TestDomain:    res.TestDomain,
		ControlDomain: res.ControlDomain,
		NormalBlocked: map[string]bool{},
		Measurements:  res.TotalMeasurements,
	}
	for proto, blocked := range res.NormalBlocked {
		out.NormalBlocked[proto.String()] = blocked
	}
	for i := range res.Strategies {
		sr := &res.Strategies[i]
		out.Strategies = append(out.Strategies, StrategyPayload{
			Strategy:      sr.Name,
			Category:      sr.Category,
			Protocol:      sr.Proto.String(),
			Permutations:  len(sr.Perms),
			Evasion:       sr.SuccessRate(),
			Circumvention: sr.CircumventionRate(),
		})
	}
	// Run returns strategies in catalog order already; sort defensively so
	// the payload stays canonical even if the catalog order ever becomes
	// worker-dependent.
	sort.SliceStable(out.Strategies, func(i, j int) bool {
		if out.Strategies[i].Strategy != out.Strategies[j].Strategy {
			return out.Strategies[i].Strategy < out.Strategies[j].Strategy
		}
		return out.Strategies[i].Protocol < out.Strategies[j].Protocol
	})
	return out, nil
}
