package cenfuzz

import "sort"

// distinctSubsequences returns every distinct proper subsequence of s —
// all the strings obtainable by deleting one or more characters — in a
// deterministic order (shortest first, then lexicographic). The empty
// string is included; s itself is not.
//
// This is the Remove-category permutation generator: Table 2's counts fall
// out of it exactly — "GET" has 7 proper subsequences, "Host: " has 63, and
// "HTTP/1.1" (with its repeated characters) has 167 distinct ones.
func distinctSubsequences(s string) []string {
	seen := map[string]bool{}
	n := len(s)
	if n > 16 {
		panic("cenfuzz: subsequence expansion too large for " + s)
	}
	for mask := 0; mask < 1<<n; mask++ {
		if mask == (1<<n)-1 {
			continue // the full string is not a removal
		}
		b := make([]byte, 0, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				b = append(b, s[i])
			}
		}
		seen[string(b)] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return out[i] < out[j]
	})
	return out
}

// caseMasks returns all 2^n capitalizations of the first n letters of s
// (n = number of ASCII letters in s), in mask order. The canonical string
// itself is included — it acts as the strategy's identity permutation.
func caseMasks(s string) []string {
	var letterIdx []int
	for i := 0; i < len(s); i++ {
		c := s[i]
		if ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') {
			letterIdx = append(letterIdx, i)
		}
	}
	n := len(letterIdx)
	if n > 8 {
		panic("cenfuzz: case expansion too large for " + s)
	}
	out := make([]string, 0, 1<<n)
	for mask := 0; mask < 1<<n; mask++ {
		b := []byte(s)
		for bit, idx := range letterIdx {
			c := b[idx]
			if mask&(1<<bit) != 0 {
				b[idx] = upper(c)
			} else {
				b[idx] = lower(c)
			}
		}
		out = append(out, string(b))
	}
	return out
}

func upper(c byte) byte {
	if 'a' <= c && c <= 'z' {
		return c - 'a' + 'A'
	}
	return c
}

func lower(c byte) byte {
	if 'A' <= c && c <= 'Z' {
		return c - 'A' + 'a'
	}
	return c
}

// reverseString reverses a string byte-wise (hostnames are ASCII).
func reverseString(s string) string {
	b := []byte(s)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return string(b)
}

// swapTLD replaces the last label of a hostname.
func swapTLD(host, tld string) string {
	for i := len(host) - 1; i >= 0; i-- {
		if host[i] == '.' {
			return host[:i+1] + tld
		}
	}
	return host + "." + tld
}

// swapSubdomain replaces the leading label of a hostname (or prepends one
// when the hostname has fewer than three labels).
func swapSubdomain(host, sub string) string {
	first := -1
	count := 1
	for i := 0; i < len(host); i++ {
		if host[i] == '.' {
			if first < 0 {
				first = i
			}
			count++
		}
	}
	if count >= 3 && first > 0 {
		return sub + host[first:]
	}
	return sub + "." + host
}
