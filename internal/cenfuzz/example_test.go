package cenfuzz_test

import (
	"fmt"
	"net/netip"

	"cendev/internal/cenfuzz"
	"cendev/internal/endpoint"
	"cendev/internal/middlebox"
	"cendev/internal/simnet"
	"cendev/internal/topology"
)

// Example runs one CenFuzz strategy against a simulated device and prints
// its evasion rate — the deterministic per-device fingerprint the paper's
// §6 builds.
func Example() {
	g := topology.NewGraph()
	asC := g.AddAS(64500, "ClientNet", "US")
	asE := g.AddAS(64501, "ServerNet", "KZ")
	r1 := g.AddRouter("r1", asC)
	r2 := g.AddRouter("r2", asE)
	g.Link("r1", "r2")
	client := g.AddHost("client", asC, r1)
	server := g.AddHost("server", asE, r2)
	net := simnet.New(g)
	net.RegisterServer("server", endpoint.NewServer("blocked.example", "control.example"))
	net.AttachDevice("r1", "r2", middlebox.NewDevice("fw", middlebox.VendorCisco,
		[]string{"blocked.example"}, netip.Addr{}))

	fz := cenfuzz.New(net, client, server, cenfuzz.Config{
		TestDomain:    "blocked.example",
		ControlDomain: "control.example",
	})
	var getWordAlt []cenfuzz.Strategy
	for _, st := range cenfuzz.Strategies() {
		if st.Name == "Get Word Alt." {
			getWordAlt = append(getWordAlt, st)
		}
	}
	res := fz.Run(getWordAlt)
	sr := res.Strategy("Get Word Alt.")
	fmt.Printf("%s: %.0f%% of permutations evade\n", sr.Name, 100*sr.SuccessRate())
	// Output: Get Word Alt.: 67% of permutations evade
}
