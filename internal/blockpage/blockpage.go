// Package blockpage is the curated blockpage fingerprint database CenTrace
// and CenFuzz consult before labeling an HTTP response as censorship. The
// paper's tools restrict the blocking verdict to responses matching a known
// blockpage recorded by Censored Planet (§4.1: "we consider the response as
// blocking only when we obtain a response that matches a known blockpage");
// this registry plays that role for the simulated vendors.
package blockpage

import (
	"net/netip"
	"strings"
)

// Fingerprint identifies one known blockpage.
type Fingerprint struct {
	ID     string
	Vendor string
	// Pattern is a substring that must appear in the response body.
	Pattern string
}

// DB is the default fingerprint set, mirroring the kinds of signatures the
// Censored Planet assets list carries: commercial filter pages, government
// pages, and ISP pages.
var DB = []Fingerprint{
	{ID: "fortinet-webfilter", Vendor: "Fortinet", Pattern: "Powered by FortiGuard"},
	{ID: "fortinet-violation", Vendor: "Fortinet", Pattern: "Web Page Blocked!"},
	{ID: "ddosguard-403", Vendor: "DDoSGuard", Pattern: "ddos-guard"},
	{ID: "netsweeper-deny", Vendor: "Netsweeper", Pattern: "netsweeper"},
	{ID: "kaspersky-swg", Vendor: "Kaspersky", Pattern: "Kaspersky Web Traffic Security"},
	{ID: "generic-gov-ru", Vendor: "", Pattern: "Доступ к запрашиваемому ресурсу ограничен"},
	{ID: "generic-isp-block", Vendor: "", Pattern: "access to this resource has been blocked"},
}

// Match scans a response body for a known blockpage and returns the first
// matching fingerprint.
func Match(body []byte) (Fingerprint, bool) {
	s := string(body)
	for _, fp := range DB {
		if strings.Contains(s, fp.Pattern) {
			return fp, true
		}
	}
	return Fingerprint{}, false
}

// VendorFor returns the vendor label for a response body, "" when the body
// matches no known blockpage or the blockpage is not vendor-attributable.
func VendorFor(body []byte) string {
	fp, ok := Match(body)
	if !ok {
		return ""
	}
	return fp.Vendor
}

// BogusIPs is the curated list of DNS-injection answer addresses — the
// DNS-extension analog of the blockpage fingerprint list. An A answer on
// this list marks the response as injected censorship rather than a
// legitimate resolution.
var BogusIPs = map[netip.Addr]bool{
	netip.MustParseAddr("10.10.34.34"):  true,
	netip.MustParseAddr("198.51.100.6"): true,
	netip.MustParseAddr("127.0.0.1"):    true,
}

// MatchDNSAnswers reports whether any answer address is a known injection
// address.
func MatchDNSAnswers(answers []netip.Addr) bool {
	for _, a := range answers {
		if BogusIPs[a] {
			return true
		}
	}
	return false
}
