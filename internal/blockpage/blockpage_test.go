package blockpage

import (
	"testing"

	"cendev/internal/middlebox"
)

func TestMatchFortinet(t *testing.T) {
	fp, ok := Match([]byte("<html>...Powered by FortiGuard...</html>"))
	if !ok || fp.Vendor != "Fortinet" {
		t.Errorf("Match = %+v ok=%v", fp, ok)
	}
}

func TestMatchMiss(t *testing.T) {
	if _, ok := Match([]byte("<html>perfectly ordinary page</html>")); ok {
		t.Error("ordinary page matched a blockpage fingerprint")
	}
	if v := VendorFor([]byte("nothing")); v != "" {
		t.Errorf("VendorFor = %q", v)
	}
}

func TestVendorProfileBlockpagesRecognized(t *testing.T) {
	// Every vendor profile that injects a blockpage must be recognizable by
	// the fingerprint DB — otherwise CenTrace's conservative blocking
	// definition would misclassify the injection as a normal response.
	for vendor, p := range middlebox.Profiles {
		if p.Action != middlebox.ActionBlockpage {
			continue
		}
		fp, ok := Match([]byte(p.Blockpage))
		if !ok {
			t.Errorf("vendor %s blockpage not in fingerprint DB", vendor)
			continue
		}
		if fp.Vendor != string(vendor) {
			t.Errorf("vendor %s blockpage attributed to %q", vendor, fp.Vendor)
		}
	}
}

func TestVendorFor(t *testing.T) {
	if v := VendorFor([]byte("x Kaspersky Web Traffic Security y")); v != "Kaspersky" {
		t.Errorf("VendorFor = %q", v)
	}
}
