// Package parallel is the minimal worker-pool primitive under the
// measurement tools' parallel fan-out. Work items are distributed to a
// fixed set of workers via an atomic counter, so each worker can own
// per-worker state (a private network clone) while items are claimed
// dynamically — the fast workers absorb the slow items, and the caller
// indexes results by item, keeping output deterministic regardless of
// worker count or scheduling.
package parallel

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cendev/internal/obs"
)

// Options instruments a fan-out. The zero value disables instrumentation.
type Options struct {
	// Pool labels the fan-out's metric series (e.g. "centrace.campaign").
	Pool string
	// Obs receives pool metrics. Deterministic series: parallel_runs_total
	// and parallel_items_total per pool (identical at every worker count).
	// Volatile series (scheduling- and wall-clock-dependent, reported in
	// the runtime section only): the effective worker count, per-worker
	// item counts and busy time, and the queue wait between pool start and
	// each item's claim. Nil disables all of them.
	Obs *obs.Registry
}

// ForEach runs fn(worker, index) for every index in [0, n), using at most
// `workers` concurrent goroutines.
//
// The worker/index contract:
//
//   - workers is clamped to [1, n]: no idle goroutines are ever spawned
//     for small batches, and worker IDs passed to fn are always in
//     [0, min(workers, n)).
//   - The worker argument is stable per goroutine and exclusive: one
//     worker never runs two calls concurrently, so callers can give each
//     worker a private resource (a network clone) without locking.
//   - Indexes are claimed dynamically in ascending order; with one worker
//     the calls are strictly sequential (0, 1, …, n-1) on the caller's
//     goroutine.
//   - ForEach returns when every call has finished. Panics inside fn
//     propagate to the caller's goroutine only if fn does not recover;
//     callers that need a panic barrier install their own recover inside
//     fn.
func ForEach(n, workers int, fn func(worker, index int)) {
	ForEachOpt(n, workers, Options{}, fn)
}

// ForEachOpt is ForEach with pool instrumentation.
func ForEachOpt(n, workers int, opt Options, fn func(worker, index int)) {
	if n <= 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var ins *poolInstruments
	if opt.Obs != nil {
		ins = newPoolInstruments(opt, n, workers)
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			ins.run(0, i, fn)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				ins.run(worker, i, fn)
			}
		}(w)
	}
	wg.Wait()
}

// poolInstruments carries the pre-resolved metric handles for one
// instrumented fan-out. A nil *poolInstruments is a no-op.
type poolInstruments struct {
	start     time.Time
	wait      *obs.Histogram // wall seconds from pool start to item claim
	itemSecs  *obs.Histogram // wall seconds spent inside fn
	workItems func(worker int) *obs.Counter
}

func newPoolInstruments(opt Options, n, workers int) *poolInstruments {
	pool := obs.L("pool", opt.Pool)
	opt.Obs.Counter("parallel_runs_total", pool).Inc()
	opt.Obs.Counter("parallel_items_total", pool).Add(int64(n))
	opt.Obs.VolatileGauge("parallel_pool_workers", pool).Set(int64(workers))
	reg := opt.Obs
	return &poolInstruments{
		start:    time.Now(), //cenlint:volatile pool wait/busy gauges are wall-clock by design; they feed VolatileHistogram series only, never canonical snapshots
		wait:     reg.VolatileHistogram("parallel_item_wait_seconds", obs.TimeBuckets, pool),
		itemSecs: reg.VolatileHistogram("parallel_item_seconds", obs.TimeBuckets, pool),
		workItems: func(worker int) *obs.Counter {
			return reg.VolatileCounter("parallel_worker_items_total", pool,
				obs.L("worker", strconv.Itoa(worker)))
		},
	}
}

// run invokes fn for one item, recording claim wait and busy time when
// instrumented.
func (p *poolInstruments) run(worker, index int, fn func(worker, index int)) {
	if p == nil {
		fn(worker, index)
		return
	}
	claimed := time.Now() //cenlint:volatile per-item latency is wall-clock by design; recorded in volatile runtime series only
	p.wait.Observe(claimed.Sub(p.start).Seconds())
	fn(worker, index)
	p.itemSecs.Observe(time.Since(claimed).Seconds()) //cenlint:volatile same wall-clock latency series as above
	p.workItems(worker).Inc()
}
