// Package parallel is the minimal worker-pool primitive under the
// measurement tools' parallel fan-out. Work items are distributed to a
// fixed set of workers via an atomic counter, so each worker can own
// per-worker state (a private network clone) while items are claimed
// dynamically — the fast workers absorb the slow items, and the caller
// indexes results by item, keeping output deterministic regardless of
// worker count or scheduling.
package parallel

import (
	"sync"
	"sync/atomic"
)

// ForEach runs fn(worker, index) for every index in [0, n), using at most
// `workers` concurrent goroutines (clamped to [1, n]). The worker argument
// identifies which of the goroutines is running the call — stable per
// goroutine, in [0, workers) — so callers can give each worker exclusive
// resources. ForEach returns when every call has finished. Panics inside
// fn propagate to the caller's goroutine only if fn does not recover;
// callers that need a panic barrier install their own recover inside fn.
func ForEach(n, workers int, fn func(worker, index int)) {
	if n <= 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}
