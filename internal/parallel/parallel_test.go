package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndexes(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 8, 100} {
		const n = 57
		var hits [n]atomic.Int32
		ForEach(n, workers, func(_, i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestForEachWorkerIDsExclusive(t *testing.T) {
	const n, workers = 200, 4
	// Each worker id must never run two calls concurrently: that is the
	// contract that lets callers give workers exclusive network clones.
	var active [workers]atomic.Int32
	ForEach(n, workers, func(w, _ int) {
		if active[w].Add(1) != 1 {
			t.Errorf("worker %d entered concurrently", w)
		}
		active[w].Add(-1)
	})
}

func TestForEachZeroItems(t *testing.T) {
	ran := false
	ForEach(0, 4, func(_, _ int) { ran = true })
	if ran {
		t.Fatal("fn ran for n=0")
	}
}

func TestForEachSerialWhenOneWorker(t *testing.T) {
	order := make([]int, 0, 10)
	ForEach(10, 1, func(w, i int) {
		if w != 0 {
			t.Fatalf("worker id %d with one worker", w)
		}
		order = append(order, i)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}
