package parallel

import (
	"bytes"
	"encoding/json"
	"sync/atomic"
	"testing"

	"cendev/internal/obs"
)

func TestForEachCoversAllIndexes(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 8, 100} {
		const n = 57
		var hits [n]atomic.Int32
		ForEach(n, workers, func(_, i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestForEachWorkerIDsExclusive(t *testing.T) {
	const n, workers = 200, 4
	// Each worker id must never run two calls concurrently: that is the
	// contract that lets callers give workers exclusive network clones.
	var active [workers]atomic.Int32
	ForEach(n, workers, func(w, _ int) {
		if active[w].Add(1) != 1 {
			t.Errorf("worker %d entered concurrently", w)
		}
		active[w].Add(-1)
	})
}

func TestForEachZeroItems(t *testing.T) {
	ran := false
	ForEach(0, 4, func(_, _ int) { ran = true })
	if ran {
		t.Fatal("fn ran for n=0")
	}
}

// TestForEachClampsWorkers pins the contract that worker IDs are always in
// [0, min(workers, n)): asking for more workers than items must not spawn
// idle goroutines or hand out IDs ≥ n.
func TestForEachClampsWorkers(t *testing.T) {
	const n = 3
	var maxWorker atomic.Int32
	maxWorker.Store(-1)
	ForEach(n, 64, func(w, _ int) {
		for {
			cur := maxWorker.Load()
			if int32(w) <= cur || maxWorker.CompareAndSwap(cur, int32(w)) {
				return
			}
		}
	})
	if got := maxWorker.Load(); got >= n {
		t.Errorf("worker id %d handed out with only %d items", got, n)
	}

	// The clamped count is what instrumentation reports, too.
	reg := obs.NewRegistry()
	ForEachOpt(n, 64, Options{Pool: "clamp", Obs: reg}, func(_, _ int) {})
	g, ok := reg.FullSnapshot().Get("parallel_pool_workers", obs.L("pool", "clamp"))
	if !ok || g.Value != n {
		t.Errorf("parallel_pool_workers = %+v, want %d", g, n)
	}
}

// TestForEachOptDeterministicSeries: the pool's deterministic counters must
// be byte-identical at every worker count, and the scheduling-dependent
// series must stay out of the deterministic snapshot.
func TestForEachOptDeterministicSeries(t *testing.T) {
	snapFor := func(workers int) []byte {
		reg := obs.NewRegistry()
		for round := 0; round < 2; round++ {
			ForEachOpt(23, workers, Options{Pool: "det", Obs: reg}, func(_, _ int) {})
		}
		raw, err := json.Marshal(reg.Snapshot())
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return raw
	}
	serial := snapFor(1)
	for _, workers := range []int{3, 16} {
		if par := snapFor(workers); !bytes.Equal(serial, par) {
			t.Errorf("workers=%d deterministic pool series differ:\n%s\n%s", workers, serial, par)
		}
	}

	reg := obs.NewRegistry()
	ForEachOpt(5, 2, Options{Pool: "det", Obs: reg}, func(_, _ int) {})
	snap := reg.Snapshot()
	if m, ok := snap.Get("parallel_runs_total", obs.L("pool", "det")); !ok || m.Value != 1 {
		t.Errorf("parallel_runs_total = %+v, want 1", m)
	}
	if m, ok := snap.Get("parallel_items_total", obs.L("pool", "det")); !ok || m.Value != 5 {
		t.Errorf("parallel_items_total = %+v, want 5", m)
	}
	if _, ok := snap.Get("parallel_item_seconds", obs.L("pool", "det")); ok {
		t.Error("volatile timing series leaked into the deterministic snapshot")
	}
	full := reg.FullSnapshot()
	if m, ok := full.Get("parallel_item_seconds", obs.L("pool", "det")); !ok || m.Count != 5 {
		t.Errorf("parallel_item_seconds in runtime section = %+v, want count 5", m)
	}
}

func TestForEachSerialWhenOneWorker(t *testing.T) {
	order := make([]int, 0, 10)
	ForEach(10, 1, func(w, i int) {
		if w != 0 {
			t.Fatalf("worker id %d with one worker", w)
		}
		order = append(order, i)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}
