package cluster

// BenchmarkClusterThroughput measures end-to-end jobs/second through
// the full protocol — HTTP submission, placement, worker pull, local
// persistence, completion, digest verification — at 1 and 3 in-process
// workers (replication 1, so added workers add capacity rather than
// redundancy). Every result digest is asserted inside the benchmark:
// a throughput number from wrong results would be worthless.

import (
	"fmt"
	"testing"

	"cendev/internal/serve"
)

func BenchmarkClusterThroughput(b *testing.B) {
	for _, workers := range []int{1, 3} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			nodes := make([]string, workers)
			for i := range nodes {
				nodes[i] = fmt.Sprintf("w%d", i+1)
			}
			tc := startCluster(b, clusterConfig{
				nodes:       nodes,
				replication: 1,
				hookFor:     echoHook,
			})
			specs := make([]serve.JobSpec, b.N)
			wantDigests := make([]string, b.N)
			for i := range specs {
				specs[i] = serve.JobSpec{
					Kind:     serve.KindCenProbe,
					Endpoint: fmt.Sprintf("ep-%d", i),
					Seed:     int64(i + 1),
				}
				s := specs[i]
				s.Normalize()
				payload, _ := echoHook("")(s)
				wantDigests[i] = serve.PayloadDigest(payload)
			}

			b.ResetTimer()
			ids := make([]string, b.N)
			for i := range specs {
				ids[i] = tc.submit(specs[i])
			}
			for i, id := range ids {
				st := tc.waitTerminal(id)
				if st.State != serve.StateDone {
					b.Fatalf("job %s: state %s (%s)", id, st.State, st.Error)
				}
				if st.Digest != wantDigests[i] {
					b.Fatalf("job %s: digest %s, want %s", id, st.Digest, wantDigests[i])
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}
