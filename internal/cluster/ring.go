package cluster

import (
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes: each physical node
// projects VirtualNodes points onto the 64-bit hash circle, and a key
// is owned by the first R distinct nodes clockwise from its hash. The
// ring is immutable after construction — membership is configuration,
// not gossip — so placement is a pure function of (members, key) and
// every caller computes identical owner sets.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // sorted member names
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultVirtualNodes is the per-node point count. 64 points per node
// keeps the max/min load ratio under ~1.3 for small clusters without
// making ring construction measurable.
const DefaultVirtualNodes = 64

// NewRing builds a ring over the given node names. vnodes <= 0 takes
// DefaultVirtualNodes.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{nodes: append([]string(nil), nodes...)}
	sort.Strings(r.nodes)
	r.points = make([]ringPoint, 0, len(r.nodes)*vnodes)
	for _, n := range r.nodes {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%s/%d", n, i)), node: n})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return r
}

// Nodes returns the sorted member names.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Owners returns the first n distinct nodes clockwise from key's hash —
// the replica set for that key. n is clamped to the member count.
func (r *Ring) Owners(key string, n int) []string {
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= hashKey(key)
	})
	owners := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			owners = append(owners, p.node)
		}
	}
	return owners
}
