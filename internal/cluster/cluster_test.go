package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cendev/internal/obs"
	"cendev/internal/serve"
)

// swapHandler lets a test replace a worker's HTTP surface mid-run —
// how "this node lost its disk" is simulated without restarting the
// listener.
type swapHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	h.ServeHTTP(w, r)
}

func (s *swapHandler) swap(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

// testCluster is one in-process cluster: a coordinator node (full serve
// API + cluster routes) and N workers on httptest listeners.
type testCluster struct {
	t       testing.TB
	srv     *serve.Server
	coord   *Coordinator
	ts      *httptest.Server
	reg     *obs.Registry
	workers map[string]*Worker
	swaps   map[string]*swapHandler
	peerURL map[string]string
}

// clusterConfig shapes startCluster.
type clusterConfig struct {
	nodes       []string
	replication int
	stealAfter  int64
	// hookFor returns the executor for one node; nil means the real
	// scheduler. Node-dependent hooks build lying or flaky workers.
	hookFor func(node string) func(serve.JobSpec) (json.RawMessage, error)
	// dead lists nodes whose pull loop never starts: HTTP up, execution
	// down — a hung or crashed worker as the cluster sees it.
	dead map[string]bool
	// workerFS injects a per-node filesystem (chaos tests).
	workerFS map[string]WorkerOptions
	serveOpt func(*serve.Options)
}

func startCluster(t testing.TB, cfg clusterConfig) *testCluster {
	t.Helper()
	if cfg.replication == 0 {
		cfg.replication = 2
	}
	if cfg.stealAfter == 0 {
		// Generous default: live workers long-poll aggressively in tests,
		// and every pull ticks the virtual clock, so a tight deadline
		// would spuriously expire leases mid-execution. Tests exercising
		// the steal path set this low explicitly.
		cfg.stealAfter = 256
	}
	tc := &testCluster{
		t:       t,
		reg:     obs.NewRegistry(),
		workers: make(map[string]*Worker),
		swaps:   make(map[string]*swapHandler),
		peerURL: make(map[string]string),
	}
	for _, n := range cfg.nodes {
		wopts := WorkerOptions{
			NodeID:    n,
			StoreDir:  t.TempDir(),
			Obs:       tc.reg,
			Logf:      t.Logf,
			RetryWait: 5 * time.Millisecond,
		}
		if cfg.hookFor != nil {
			wopts.RunHook = cfg.hookFor(n)
		}
		if base, ok := cfg.workerFS[n]; ok && base.FS != nil {
			wopts.FS = base.FS
		}
		w, err := NewWorker(wopts)
		if err != nil {
			t.Fatal(err)
		}
		tc.workers[n] = w
		sh := &swapHandler{h: w.Handler()}
		tc.swaps[n] = sh
		wts := httptest.NewServer(sh)
		t.Cleanup(wts.Close)
		tc.peerURL[n] = wts.URL
	}

	sopts := serve.Options{
		StoreDir:   t.TempDir(),
		Workers:    4,
		AdmitBurst: 4096,
		AdmitRate:  1 << 20,
		Obs:        tc.reg,
		Logf:       t.Logf,
		JobTimeout: 30 * time.Second,
	}
	if cfg.serveOpt != nil {
		cfg.serveOpt(&sopts)
	}
	copts := CoordinatorOptions{
		Peers:       tc.peerURL,
		Replication: cfg.replication,
		StealAfter:  cfg.stealAfter,
		PollWait:    25 * time.Millisecond,
		Obs:         tc.reg,
		Logf:        t.Logf,
	}
	srv, coord, handler, err := NewCoordinatorNode(sopts, copts)
	if err != nil {
		t.Fatal(err)
	}
	tc.srv, tc.coord = srv, coord
	tc.ts = httptest.NewServer(handler)
	t.Cleanup(tc.ts.Close)

	for _, n := range cfg.nodes {
		tc.workers[n].SetCoordinatorURL(tc.ts.URL)
		if !cfg.dead[n] {
			tc.workers[n].Start()
		}
	}
	t.Cleanup(func() {
		for _, w := range tc.workers {
			w.pullStop()
		}
	})
	return tc
}

func (tc *testCluster) submit(spec serve.JobSpec) string {
	tc.t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(tc.ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		tc.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		tc.t.Fatalf("POST /v1/jobs = %d: %s", resp.StatusCode, raw)
	}
	var sr struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &sr); err != nil {
		tc.t.Fatal(err)
	}
	return sr.ID
}

func (tc *testCluster) waitTerminal(id string) serve.JobStatus {
	tc.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(tc.ts.URL + "/v1/jobs/" + id)
		if err != nil {
			tc.t.Fatal(err)
		}
		var st serve.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			tc.t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	tc.t.Fatalf("job %s not terminal after 60s", id)
	return serve.JobStatus{}
}

func (tc *testCluster) fetchResult(id string) []byte {
	tc.t.Helper()
	resp, err := http.Get(tc.ts.URL + "/v1/results/" + id)
	if err != nil {
		tc.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		tc.t.Fatalf("GET /v1/results/%s = %d: %s", id, resp.StatusCode, raw)
	}
	return raw
}

// echoHook is a cheap deterministic executor: the payload is a pure
// function of the spec, like the real scheduler but without the world.
func echoHook(node string) func(serve.JobSpec) (json.RawMessage, error) {
	return func(spec serve.JobSpec) (json.RawMessage, error) {
		return json.RawMessage(fmt.Sprintf(`{"endpoint":%q,"domain":%q,"seed":%d}`,
			spec.Endpoint, spec.Domain, spec.Seed)), nil
	}
}

// TestClusterMatchesStandalone is the acceptance-criteria test: the
// same spec+seed through a standalone censerved and through a 3-node
// cluster (replication 2, real scheduler on every worker) must produce
// byte-identical result payloads, verified by SHA-256 at every hop.
func TestClusterMatchesStandalone(t *testing.T) {
	spec := serve.JobSpec{
		Kind:     serve.KindCenTrace,
		Endpoint: "az-ep-0-0",
		Domain:   "www.globalblocked.example",
		Seed:     7,
		Loss:     0.05,
	}

	// Standalone reference run.
	srv, err := serve.New(serve.Options{
		StoreDir: t.TempDir(), Obs: obs.NewRegistry(), Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	sts := httptest.NewServer(srv.Handler())
	defer sts.Close()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(sts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sr struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var want []byte
	deadline := time.Now().Add(60 * time.Second)
	for {
		r2, err := http.Get(sts.URL + "/v1/results/" + sr.ID)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(r2.Body)
		r2.Body.Close()
		if r2.StatusCode == http.StatusOK {
			want = raw
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("standalone job never finished: %d %s", r2.StatusCode, raw)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// 3-node cluster run with the real scheduler on every worker.
	tc := startCluster(t, clusterConfig{nodes: []string{"w1", "w2", "w3"}, replication: 2})
	id := tc.submit(spec)
	st := tc.waitTerminal(id)
	if st.State != serve.StateDone {
		t.Fatalf("cluster job: state %s (%s)", st.State, st.Error)
	}
	if len(st.Replicas) != 2 {
		t.Fatalf("replicas = %v, want 2 distinct nodes", st.Replicas)
	}
	if st.Digest != serve.PayloadDigest(want) {
		t.Fatalf("cluster digest %s != standalone digest %s", st.Digest, serve.PayloadDigest(want))
	}
	got := tc.fetchResult(id)
	if !bytes.Equal(got, want) {
		t.Fatalf("cluster payload diverged from standalone:\n  cluster    %s\n  standalone %s", got, want)
	}

	// Every replica's local copy is byte-identical too.
	for _, n := range st.Replicas {
		e, ok := tc.workers[n].Store().Get(id)
		if !ok || !bytes.Equal(e.Payload, want) {
			t.Fatalf("replica %s local copy missing or diverged", n)
		}
	}

	if err := tc.srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, n := range []string{"w1", "w2", "w3"} {
		if err := tc.workers[n].Drain(); err != nil {
			t.Fatalf("worker %s drain: %v", n, err)
		}
	}
}

// TestClusterStealsFromDeadWorker: a worker that never pulls (HTTP up,
// execution down) must not stall the cluster — its replica slots expire
// in virtual time and are stolen by live nodes, and every job still
// finishes with the full replica count and matching digests.
func TestClusterStealsFromDeadWorker(t *testing.T) {
	tc := startCluster(t, clusterConfig{
		nodes:       []string{"w1", "w2", "w3"},
		replication: 2,
		stealAfter:  4,
		hookFor:     echoHook,
		dead:        map[string]bool{"w2": true},
	})
	ids := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		ids = append(ids, tc.submit(serve.JobSpec{
			Kind: serve.KindCenProbe, Endpoint: fmt.Sprintf("ep-%d", i), Seed: int64(i + 1),
		}))
	}
	for _, id := range ids {
		st := tc.waitTerminal(id)
		if st.State != serve.StateDone {
			t.Fatalf("job %s: state %s (%s)", id, st.State, st.Error)
		}
		if len(st.Replicas) != 2 {
			t.Fatalf("job %s: replicas %v, want 2", id, st.Replicas)
		}
		for _, n := range st.Replicas {
			if n == "w2" {
				t.Fatalf("job %s: dead node w2 listed as replica", id)
			}
		}
	}
	if steals := tc.reg.Counter("censerved_cluster_steals_total").Value(); steals == 0 {
		t.Fatal("no steals recorded; with 8 jobs over a 3-node ring, w2 owned some slots")
	}
	if err := tc.srv.Drain(); err != nil {
		t.Fatalf("drain with dead worker: %v", err)
	}
}

// TestClusterConflictDetection: a worker that returns different bytes
// than its peers (lying, corrupt, or non-deterministic) must surface as
// StateConflict — never as a silently wrong result.
func TestClusterConflictDetection(t *testing.T) {
	tc := startCluster(t, clusterConfig{
		nodes:       []string{"w1", "w2"},
		replication: 2,
		hookFor: func(node string) func(serve.JobSpec) (json.RawMessage, error) {
			return func(spec serve.JobSpec) (json.RawMessage, error) {
				// w2 lies: its payload depends on the node, violating the
				// determinism contract.
				return json.RawMessage(fmt.Sprintf(`{"seed":%d,"node":%q}`, spec.Seed, node)), nil
			}
		},
	})
	id := tc.submit(serve.JobSpec{Kind: serve.KindCenProbe, Seed: 3})
	st := tc.waitTerminal(id)
	if st.State != serve.StateConflict {
		t.Fatalf("state = %s (%s), want conflict", st.State, st.Error)
	}
	if tc.reg.Counter("censerved_cluster_conflicts_total").Value() == 0 {
		t.Fatal("conflict metric not bumped")
	}
	resp, err := http.Get(tc.ts.URL + "/v1/results/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("GET /v1/results on conflicted job = %d, want 500", resp.StatusCode)
	}
}

// TestClusterReadRepair: wiping one replica and reading the result must
// (a) still serve the right bytes from the surviving replica and
// (b) push a verified copy back onto the wiped node.
func TestClusterReadRepair(t *testing.T) {
	tc := startCluster(t, clusterConfig{
		nodes:       []string{"w1", "w2"},
		replication: 2,
		hookFor:     echoHook,
	})
	id := tc.submit(serve.JobSpec{Kind: serve.KindCenProbe, Endpoint: "ep-r", Seed: 5})
	st := tc.waitTerminal(id)
	if st.State != serve.StateDone || len(st.Replicas) != 2 {
		t.Fatalf("setup: state %s replicas %v", st.State, st.Replicas)
	}
	want := tc.fetchResult(id)

	// w2 loses its disk: swap in a fresh worker with an empty store.
	blank, err := NewWorker(WorkerOptions{NodeID: "w2", StoreDir: t.TempDir(), Obs: tc.reg, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	tc.swaps["w2"].swap(blank.Handler())
	if _, ok := blank.Store().Get(id); ok {
		t.Fatal("blank worker already has the result")
	}

	got := tc.fetchResult(id)
	if !bytes.Equal(got, want) {
		t.Fatalf("post-wipe read diverged: %s vs %s", got, want)
	}
	e, ok := blank.Store().Get(id)
	if !ok || !bytes.Equal(e.Payload, want) || e.Digest != st.Digest {
		t.Fatalf("read-repair did not restore w2's replica (ok=%v)", ok)
	}
	if tc.reg.Counter("censerved_cluster_repairs_total").Value() == 0 {
		t.Fatal("repair metric not bumped")
	}
}

// TestClusterAntiEntropySweep: the seeded sweep finds a wiped replica
// without any read traffic and restores it.
func TestClusterAntiEntropySweep(t *testing.T) {
	tc := startCluster(t, clusterConfig{
		nodes:       []string{"w1", "w2"},
		replication: 2,
		hookFor:     echoHook,
	})
	ids := []string{
		tc.submit(serve.JobSpec{Kind: serve.KindCenProbe, Endpoint: "ep-a", Seed: 11}),
		tc.submit(serve.JobSpec{Kind: serve.KindCenProbe, Endpoint: "ep-b", Seed: 12}),
	}
	for _, id := range ids {
		if st := tc.waitTerminal(id); st.State != serve.StateDone {
			t.Fatalf("setup: job %s state %s", id, st.State)
		}
	}

	blank, err := NewWorker(WorkerOptions{NodeID: "w1", StoreDir: t.TempDir(), Obs: tc.reg, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	tc.swaps["w1"].swap(blank.Handler())

	rep, err := tc.coord.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != len(ids) {
		t.Fatalf("sweep repaired %d results, want %d (report %+v)", rep.Repaired, len(ids), rep)
	}
	if len(rep.Unrepairable) != 0 {
		t.Fatalf("sweep left unrepairable jobs: %v", rep.Unrepairable)
	}
	for _, id := range ids {
		if _, ok := blank.Store().Get(id); !ok {
			t.Fatalf("sweep did not restore %s on w1", id)
		}
	}

	// A second sweep over the healed cluster verifies everything in
	// place and repairs nothing.
	rep2, err := tc.coord.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Repaired != 0 || rep2.RangesMismatch != 0 {
		t.Fatalf("post-heal sweep not clean: %+v", rep2)
	}
}
