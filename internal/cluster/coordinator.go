package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"cendev/internal/obs"
	"cendev/internal/serve"
	"cendev/internal/wire"
)

// CoordinatorOptions configures a Coordinator.
type CoordinatorOptions struct {
	// Peers maps worker node IDs to their base URLs (required, ≥1).
	Peers map[string]string
	// Replication is the replica count R per job (default 2, clamped to
	// the peer count).
	Replication int
	// StealAfter is the work-stealing deadline, in coordinator events
	// (pull/completion arrivals): a replica slot idle that long becomes
	// stealable by any eligible node (default 16). Virtual time, so the
	// same protocol history always steals at the same points.
	StealAfter int64
	// MaxTransient is how many transient worker failures a job absorbs
	// before the coordinator reports the job itself as transiently failed
	// (default 2×R; serve's retry budget takes over from there).
	MaxTransient int
	// Seed orders the anti-entropy sweep (default 1).
	Seed int64
	// VirtualNodes is the ring point count per node (default
	// DefaultVirtualNodes).
	VirtualNodes int
	// PollWait bounds how long a worker pull parks when no work is
	// available. Liveness only — it decides when a worker polls again,
	// never any placement or result (default 200ms).
	PollWait time.Duration
	// Obs receives the cluster series.
	Obs *obs.Registry
	// Logf receives operational log lines.
	Logf func(format string, args ...any)
	// Client performs coordinator→worker HTTP (fetch, repair, digests).
	Client *http.Client
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.Replication <= 0 {
		o.Replication = 2
	}
	if o.Replication > len(o.Peers) {
		o.Replication = len(o.Peers)
	}
	if o.StealAfter <= 0 {
		o.StealAfter = 16
	}
	if o.MaxTransient <= 0 {
		o.MaxTransient = 2 * o.Replication
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.PollWait <= 0 {
		o.PollWait = 200 * time.Millisecond
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	return o
}

// Coordinator is the cluster brain: a serve.Backend whose Execute
// places each admitted job on R ring-owner workers, hands leases to
// pulling workers, verifies completion digests against each other, and
// steals expired slots. It stores digests and replica sets, never
// payloads — the workers' stores own the bytes.
type Coordinator struct {
	opts CoordinatorOptions
	ring *Ring
	srv  *serve.Server

	mu sync.Mutex
	// events is the coordinator's virtual clock: one tick per protocol
	// arrival (pull or completion). Every deadline in the lease state
	// machine is measured in these ticks, so a replayed protocol history
	// makes identical steal/collapse decisions regardless of wall time.
	events   int64
	notify   chan struct{}
	draining bool
	jobs     map[string]*clusterJob
}

// clusterJob is one in-flight job's replica state machine.
type clusterJob struct {
	id          string
	spec        serve.JobSpec
	specJSON    []byte
	slots       []*slot
	completions map[string]string // node → result digest (successes only)
	transient   int               // transient worker failures absorbed so far
	lastErr     string
	finished    bool
	res         serve.ExecResult
	err         error
	done        chan struct{}
}

// slot is one replica execution obligation. It starts assigned to a
// ring owner; if unserved past the steal deadline it can be granted to
// any eligible node, and if no eligible node exists but some node
// already completed the job, it collapses onto that completion — the
// rule that keeps min(R, live) progress when nodes die.
type slot struct {
	node string // current assignee (ring owner, or thief after a steal)
	// availableSince is the event time the slot last became grantable;
	// the steal deadline counts from here.
	availableSince int64
	leased         bool
	leasedAt       int64
	attempt        int64
	covered        bool
	coveredBy      string
}

// NewCoordinator builds a Coordinator over a static peer set.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	opts = opts.withDefaults()
	if len(opts.Peers) == 0 {
		return nil, errors.New("cluster: coordinator needs at least one peer")
	}
	nodes := make([]string, 0, len(opts.Peers))
	for n := range opts.Peers {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	return &Coordinator{
		opts:   opts,
		ring:   NewRing(nodes, opts.VirtualNodes),
		notify: make(chan struct{}),
		jobs:   make(map[string]*clusterJob),
	}, nil
}

// Bind gives the coordinator its server (store access for read-repair
// and anti-entropy). Called once by serve.New.
func (c *Coordinator) Bind(s *serve.Server) { c.srv = s }

// Routes returns the coordinator's protocol surface, mounted by the
// node assembly next to the serve API.
func (c *Coordinator) Routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster/pull", c.handlePull)
	mux.HandleFunc("POST /v1/cluster/complete", c.handleComplete)
	return mux
}

// broadcastLocked wakes every parked long-poll. Callers hold c.mu.
func (c *Coordinator) broadcastLocked() {
	close(c.notify)
	c.notify = make(chan struct{})
}

// tickLocked advances the virtual clock one event, expires overdue
// leases, and re-evaluates collapse for every job — so a job whose only
// missing slot belongs to a dead node makes progress on any protocol
// arrival, not just completions. Callers hold c.mu.
func (c *Coordinator) tickLocked() {
	c.events++
	ids := make([]string, 0, len(c.jobs))
	for id := range c.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		cj, live := c.jobs[id]
		if !live {
			continue
		}
		for _, sl := range cj.slots {
			if !sl.covered && sl.leased && c.events-sl.leasedAt > c.opts.StealAfter {
				// An expired lease was already granted a full deadline ago;
				// backdating availableSince makes the slot stealable now.
				sl.leased = false
				sl.availableSince = sl.leasedAt
				c.opts.Logf("cluster: job %s: lease on %s expired (event %d)", cj.id, sl.node, c.events)
			}
		}
		c.checkFinishLocked(cj)
	}
}

// eligibleLocked reports whether node may take a slot of cj: one
// replica slot per node per job, and a node that already completed the
// job contributes nothing by running it again.
func (c *Coordinator) eligibleLocked(cj *clusterJob, node string) bool {
	if _, done := cj.completions[node]; done {
		return false
	}
	for _, sl := range cj.slots {
		if !sl.covered && sl.node == node {
			return false
		}
	}
	return true
}

// nextEligibleLocked walks the member list starting after `after`
// (wrapping) and returns the first node eligible to take a slot of cj,
// or "" if none. Callers hold c.mu.
func (c *Coordinator) nextEligibleLocked(cj *clusterJob, after string) string {
	nodes := c.ring.Nodes()
	start := 0
	for i, n := range nodes {
		if n == after {
			start = i + 1
			break
		}
	}
	for i := 0; i < len(nodes); i++ {
		n := nodes[(start+i)%len(nodes)]
		if n != after && c.eligibleLocked(cj, n) {
			return n
		}
	}
	return ""
}

// grantLocked finds a slot for a pulling node: first a slot assigned to
// it, then any expired slot it is eligible to steal. Jobs are scanned
// in admission (ID) order so grant decisions are a pure function of
// protocol state.
func (c *Coordinator) grantLocked(node string) *wire.JobLease {
	ids := make([]string, 0, len(c.jobs))
	for id := range c.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	// Pass 1: slots already assigned to this node.
	for _, id := range ids {
		cj := c.jobs[id]
		for _, sl := range cj.slots {
			if !sl.covered && !sl.leased && sl.node == node {
				return c.leaseLocked(cj, sl, node, node)
			}
		}
	}
	// Pass 2: expired slots this node can steal.
	for _, id := range ids {
		cj := c.jobs[id]
		if !c.eligibleLocked(cj, node) {
			continue
		}
		for _, sl := range cj.slots {
			if !sl.covered && !sl.leased && c.events-sl.availableSince > c.opts.StealAfter {
				owner := sl.node
				sl.node = node
				c.opts.Obs.Counter("censerved_cluster_steals_total").Inc()
				c.opts.Logf("cluster: job %s: slot of %s stolen by %s (event %d)", cj.id, owner, node, c.events)
				return c.leaseLocked(cj, sl, node, owner)
			}
		}
	}
	return nil
}

func (c *Coordinator) leaseLocked(cj *clusterJob, sl *slot, node, owner string) *wire.JobLease {
	sl.leased = true
	sl.leasedAt = c.events
	sl.attempt++
	c.opts.Obs.Counter("censerved_cluster_leases_total", obs.L("node", node)).Inc()
	return &wire.JobLease{
		ID: cj.id, Node: node, Owner: owner, Attempt: sl.attempt,
		Seed: cj.spec.Seed, Spec: cj.specJSON,
	}
}

// collapseLocked covers expired slots that no node can serve with an
// existing completion. Without this rule a cluster with fewer live
// nodes than R deadlocks; with it, every job settles for
// min(R, live-and-willing) distinct copies and finishes.
func (c *Coordinator) collapseLocked(cj *clusterJob) {
	if len(cj.completions) == 0 {
		return
	}
	var coverer string
	for n := range cj.completions {
		if coverer == "" || n < coverer {
			coverer = n
		}
	}
	for _, sl := range cj.slots {
		if sl.covered || sl.leased {
			continue
		}
		if c.events-sl.availableSince <= c.opts.StealAfter {
			continue
		}
		candidates := false
		for _, n := range c.ring.Nodes() {
			if c.eligibleLocked(cj, n) {
				candidates = true
				break
			}
		}
		if candidates {
			continue
		}
		sl.covered = true
		sl.coveredBy = coverer
		c.opts.Obs.Counter("censerved_cluster_collapses_total").Inc()
		c.opts.Logf("cluster: job %s: slot of %s collapsed onto %s's completion", cj.id, sl.node, coverer)
	}
}

// checkFinishLocked finishes the job once every slot is covered:
// digests must all agree (conflict otherwise), and the replica set is
// every node holding a durable verified copy.
func (c *Coordinator) checkFinishLocked(cj *clusterJob) {
	c.collapseLocked(cj)
	for _, sl := range cj.slots {
		if !sl.covered {
			return
		}
	}
	nodes := make([]string, 0, len(cj.completions))
	for n := range cj.completions {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	digest := ""
	for _, n := range nodes {
		d := cj.completions[n]
		if digest == "" {
			digest = d
			continue
		}
		if d != digest {
			pairs := make([]string, 0, len(nodes))
			for _, m := range nodes {
				pairs = append(pairs, fmt.Sprintf("%s=%.12s", m, cj.completions[m]))
			}
			c.opts.Obs.Counter("censerved_cluster_conflicts_total").Inc()
			c.finishLocked(cj, serve.ExecResult{}, serve.Conflict(
				fmt.Errorf("cluster: replica digest mismatch for %s: %v", cj.id, pairs)))
			return
		}
	}
	c.finishLocked(cj, serve.ExecResult{Digest: digest, Replicas: nodes, Remote: true}, nil)
}

func (c *Coordinator) finishLocked(cj *clusterJob, res serve.ExecResult, err error) {
	if cj.finished {
		return
	}
	cj.finished = true
	cj.res = res
	cj.err = err
	delete(c.jobs, cj.id)
	close(cj.done)
	c.broadcastLocked()
}

// Execute implements serve.Backend: place the job on its ring owners
// and block until the replica set agrees (or fails). The serve watchdog
// above this call is the overall liveness backstop.
func (c *Coordinator) Execute(j serve.Job) (serve.ExecResult, error) {
	specJSON, err := json.Marshal(j.Spec)
	if err != nil {
		return serve.ExecResult{}, fmt.Errorf("cluster: marshaling spec: %w", err)
	}
	cj := &clusterJob{
		id:          j.ID,
		spec:        j.Spec,
		specJSON:    specJSON,
		completions: make(map[string]string),
		done:        make(chan struct{}),
	}
	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return serve.ExecResult{}, serve.Transient(errors.New("cluster: coordinator draining"))
	}
	owners := c.ring.Owners(j.ID, c.opts.Replication)
	for _, o := range owners {
		cj.slots = append(cj.slots, &slot{node: o, availableSince: c.events})
	}
	c.jobs[j.ID] = cj
	c.opts.Logf("cluster: job %s placed on %v (event %d)", j.ID, owners, c.events)
	c.broadcastLocked()
	c.mu.Unlock()

	<-cj.done
	return cj.res, cj.err
}

// handlePull long-polls for a lease. 200 carries a wire JobLease frame,
// 204 means nothing available before the park timeout, 410 means the
// coordinator is draining and the worker should stop pulling.
func (c *Coordinator) handlePull(w http.ResponseWriter, r *http.Request) {
	node := r.URL.Query().Get("node")
	if _, ok := c.opts.Peers[node]; !ok {
		http.Error(w, fmt.Sprintf("unknown node %q", node), http.StatusBadRequest)
		return
	}
	c.opts.Obs.Counter("censerved_cluster_pulls_total", obs.L("node", node)).Inc()
	//cenlint:volatile long-poll park timer: decides when an idle worker polls again, never placement or result bytes
	park := time.NewTimer(c.opts.PollWait)
	defer park.Stop()
	for {
		c.mu.Lock()
		c.tickLocked()
		lease := c.grantLocked(node)
		draining := c.draining
		notify := c.notify
		c.mu.Unlock()
		if lease != nil {
			w.Header().Set("Content-Type", "application/octet-stream")
			_, _ = w.Write(wire.AppendFrame(nil, wire.AppendJobLease(nil, lease)))
			return
		}
		if draining {
			w.WriteHeader(http.StatusGone)
			return
		}
		select {
		case <-notify:
		case <-park.C:
			w.WriteHeader(http.StatusNoContent)
			return
		case <-r.Context().Done():
			return
		}
	}
}

// handleComplete ingests one worker completion: a wire Completion frame
// whose digest is the worker's claim about its locally durable result.
func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 2<<20))
	if err != nil {
		http.Error(w, "reading completion: "+err.Error(), http.StatusBadRequest)
		return
	}
	rd := wire.NewReader(body)
	payload, ok := rd.Next()
	if !ok {
		http.Error(w, "completion body is not a wire frame", http.StatusBadRequest)
		return
	}
	comp, err := wire.DecodeCompletion(payload)
	if err != nil {
		http.Error(w, "decoding completion: "+err.Error(), http.StatusBadRequest)
		return
	}
	if _, known := c.opts.Peers[comp.Node]; !known {
		http.Error(w, fmt.Sprintf("unknown node %q", comp.Node), http.StatusBadRequest)
		return
	}
	c.opts.Obs.Counter("censerved_cluster_completions_total", obs.L("node", comp.Node)).Inc()

	c.mu.Lock()
	defer c.mu.Unlock()
	c.tickLocked()
	defer c.broadcastLocked()
	cj, live := c.jobs[comp.ID]
	if !live {
		// Late completion for a finished job: the worker holds an extra
		// durable copy; anti-entropy will notice and keep or log it.
		c.opts.Logf("cluster: late completion for %s from %s ignored", comp.ID, comp.Node)
		w.WriteHeader(http.StatusOK)
		return
	}
	if comp.Error != "" {
		cj.transient++
		cj.lastErr = comp.Error
		if !comp.Transient {
			c.finishLocked(cj, serve.ExecResult{}, errors.New(comp.Error))
		} else if cj.transient > c.opts.MaxTransient {
			c.finishLocked(cj, serve.ExecResult{}, serve.Transient(
				fmt.Errorf("cluster: %d transient worker failures, last: %s", cj.transient, cj.lastErr)))
		} else {
			// Release the node's slot, preferring a different node for the
			// re-lease: a node that just failed transiently (full disk,
			// chaos fault) re-grabbing its own slot forever would starve
			// the steal path.
			for _, sl := range cj.slots {
				if !sl.covered && sl.node == comp.Node {
					sl.leased = false
					sl.availableSince = c.events
					if next := c.nextEligibleLocked(cj, sl.node); next != "" {
						c.opts.Logf("cluster: job %s: slot reassigned %s → %s after transient failure", cj.id, sl.node, next)
						sl.node = next
					}
				}
			}
			c.opts.Logf("cluster: job %s: transient failure on %s: %s", cj.id, comp.Node, comp.Error)
		}
		w.WriteHeader(http.StatusOK)
		return
	}
	cj.completions[comp.Node] = comp.Digest
	for _, sl := range cj.slots {
		if !sl.covered && sl.node == comp.Node {
			sl.covered = true
			sl.coveredBy = comp.Node
		}
	}
	c.checkFinishLocked(cj)
	w.WriteHeader(http.StatusOK)
}
