// Package cluster turns censerved into a multi-node service: one
// coordinator owning admission, placement, and verification, plus N
// workers owning execution and payload storage (DESIGN.md §15).
//
// The whole design leans on the serve determinism contract: a job's
// result payload is a pure function of its normalized spec+seed. That
// makes replication re-execution — the coordinator leases the same job
// to R ring-owner workers, each runs it independently against its own
// clone-isolated world, and the replicas are "consistent" exactly when
// their SHA-256 digests agree. There is no payload shipping on the
// write path, no quorum protocol, and divergence is not resolved but
// surfaced (serve.StateConflict): two replicas that disagree mean a
// broken determinism invariant or a lying node, and both need an
// operator.
//
// Time is virtual everywhere a decision is made: the coordinator's
// clock is a counter of protocol events (pull and completion arrivals),
// steal deadlines are measured in those events, and the anti-entropy
// sweep order is a seeded permutation. Wall clocks appear only in
// liveness plumbing (HTTP long-poll parking), never in anything that
// chooses a result byte — the same rule cenlint enforces on the rest of
// the repo.
package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"sort"
)

// hashKey maps a job ID onto the ring's hash space. FNV-1a alone has
// weak avalanche on short, similar strings (sequential job IDs, vnode
// labels), which skews both ring balance and bucket spread; a
// Murmur-style finalizer mixes the bits out.
func hashKey(id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return mix64(h.Sum64())
}

// mix64 is the 64-bit avalanche finalizer (MurmurHash3 fmix64).
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Buckets is the fixed anti-entropy partition count: the top 6 bits of
// the key hash, so bucket boundaries never move as jobs accumulate.
const Buckets = 64

// bucketShift positions the bucket index in the hash's top bits.
const bucketShift = 58

// bucketOf returns the anti-entropy bucket a job ID falls in.
func bucketOf(id string) int { return int(hashKey(id) >> bucketShift) }

// bucketRange returns the inclusive hash-space range of one bucket —
// the Start/End a wire.DigestRange query carries.
func bucketRange(bucket int) (start, end uint64) {
	start = uint64(bucket) << bucketShift
	end = start | (1<<bucketShift - 1)
	return start, end
}

// setDigest rolls a set of (job ID, result digest) pairs into one
// comparable digest: SHA-256 over the sorted "id=digest\n" lines.
// Order-independent by construction, so two nodes holding the same
// results agree regardless of arrival order. Empty set → empty string.
func setDigest(pairs map[string]string) (count int64, digest string) {
	if len(pairs) == 0 {
		return 0, ""
	}
	ids := make([]string, 0, len(pairs))
	for id := range pairs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	h := sha256.New()
	for _, id := range ids {
		fmt.Fprintf(h, "%s=%s\n", id, pairs[id])
	}
	return int64(len(pairs)), hex.EncodeToString(h.Sum(nil))
}
