package cluster

// Node assembly: how cmd/censerved composes a cluster role out of the
// serve shell and the cluster parts. A coordinator node is a full
// serve.Server (admission, queue, store, API) whose backend is a
// Coordinator; a worker node is a Worker plus its HTTP surface. Both
// return one http.Handler so the daemon serves a single listener.

import (
	"net/http"

	"cendev/internal/serve"
)

// NewCoordinatorNode builds a coordinator: serve.New over the cluster
// backend, with the cluster protocol routes mounted next to the serve
// API. The serve options' Backend field is overwritten.
func NewCoordinatorNode(sopts serve.Options, copts CoordinatorOptions) (*serve.Server, *Coordinator, http.Handler, error) {
	if copts.Obs == nil {
		copts.Obs = sopts.Obs
	}
	if copts.Logf == nil {
		copts.Logf = sopts.Logf
	}
	coord, err := NewCoordinator(copts)
	if err != nil {
		return nil, nil, nil, err
	}
	sopts.Backend = coord
	srv, err := serve.New(sopts)
	if err != nil {
		return nil, nil, nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/v1/cluster/", coord.Routes())
	mux.Handle("/", srv.Handler())
	return srv, coord, mux, nil
}
