package cluster

// Worker: the execution half of the cluster. A worker owns a local
// sharded result store (the same crash-safe store standalone censerved
// uses), pulls leases from the coordinator, executes them on its own
// clone-isolated scheduler world, persists the result locally — fsynced
// before anything is acknowledged — and pushes back a digest-bearing
// completion. Its HTTP surface serves the bytes back out: local result
// reads, repair pushes, and anti-entropy digest queries.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"cendev/internal/obs"
	"cendev/internal/serve"
	"cendev/internal/vfs"
	"cendev/internal/wire"
)

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// NodeID is this worker's cluster name (required; must match the
	// coordinator's peer table).
	NodeID string
	// CoordinatorURL is the coordinator's base URL (required for Start;
	// a worker that only serves its store may leave it empty).
	CoordinatorURL string
	// StoreDir is the local result-store directory (required).
	StoreDir string
	// Shards is the store segment count (default serve.DefaultShards).
	Shards int
	// FS is the filesystem the store persists through (nil = real one);
	// per-node chaos tests inject faults here.
	FS vfs.FS
	// Obs receives the worker's series.
	Obs *obs.Registry
	// Logf receives operational log lines.
	Logf func(format string, args ...any)
	// RunHook, when non-nil, replaces the scheduler as the executor (test
	// seam, same contract as serve.Options.RunHook).
	RunHook func(serve.JobSpec) (json.RawMessage, error)
	// Client performs worker→coordinator HTTP.
	Client *http.Client
	// RetryWait is the pause after a failed coordinator round-trip before
	// the pull loop tries again. Liveness only (default 100ms).
	RetryWait time.Duration
}

// Worker is one execution node.
type Worker struct {
	opts  WorkerOptions
	store *serve.Store
	run   func(serve.JobSpec) (json.RawMessage, error)
	mux   *http.ServeMux

	pullCtx  context.Context
	pullStop context.CancelFunc
	loopDone chan struct{}
	started  atomic.Bool
}

// NewWorker opens the worker's local store and builds its HTTP surface.
// The pull loop starts separately (Start), so a node can serve its
// store without executing — which is also what a crashed worker looks
// like to the rest of the cluster.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.NodeID == "" {
		return nil, fmt.Errorf("cluster: worker needs a node ID")
	}
	if opts.Shards <= 0 {
		opts.Shards = serve.DefaultShards
	}
	if opts.FS == nil {
		opts.FS = vfs.OS()
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	if opts.RetryWait <= 0 {
		opts.RetryWait = 100 * time.Millisecond
	}
	store, err := serve.OpenStoreFS(opts.FS, opts.StoreDir, opts.Shards)
	if err != nil {
		return nil, err
	}
	for _, warn := range store.Warnings() {
		opts.Logf("worker %s: store recovery: %s", opts.NodeID, warn)
	}
	w := &Worker{opts: opts, store: store, loopDone: make(chan struct{})}
	if opts.RunHook != nil {
		w.run = opts.RunHook
	} else {
		w.run = serve.NewScheduler(opts.Obs).Run
	}
	w.pullCtx, w.pullStop = context.WithCancel(context.Background())
	w.mux = http.NewServeMux()
	w.mux.HandleFunc("GET /v1/cluster/local/{id}", w.handleLocal)
	w.mux.HandleFunc("POST /v1/cluster/repair", w.handleRepair)
	w.mux.HandleFunc("GET /v1/cluster/digests", w.handleDigests)
	return w, nil
}

// Handler returns the worker's HTTP surface.
func (w *Worker) Handler() http.Handler { return w.mux }

// SetCoordinatorURL wires the coordinator address after construction —
// assembly is circular (the coordinator's peer table needs worker URLs,
// workers need the coordinator URL), so one side binds late. Must be
// called before Start.
func (w *Worker) SetCoordinatorURL(u string) { w.opts.CoordinatorURL = u }

// Store exposes the worker's local store (tests, drain verification).
func (w *Worker) Store() *serve.Store { return w.store }

// Start launches the pull loop. Idempotent.
func (w *Worker) Start() {
	if w.started.Swap(true) {
		return
	}
	go w.pullLoop()
}

// Drain stops pulling, waits for the in-flight lease (if any) to finish
// executing and push its completion, then compacts and closes the local
// store. A worker that never started drains immediately.
func (w *Worker) Drain() error {
	w.pullStop()
	if w.started.Load() {
		<-w.loopDone
	}
	if err := w.store.Compact(); err != nil {
		w.store.Close()
		return fmt.Errorf("cluster: worker %s drain compact: %w", w.opts.NodeID, err)
	}
	if err := w.store.Close(); err != nil {
		return fmt.Errorf("cluster: worker %s drain close: %w", w.opts.NodeID, err)
	}
	return nil
}

// pullLoop long-polls the coordinator for leases until told to stop
// (Drain) or the coordinator drains (410).
func (w *Worker) pullLoop() {
	defer close(w.loopDone)
	for {
		if w.pullCtx.Err() != nil {
			return
		}
		lease, status, err := w.pull()
		switch {
		case err != nil:
			if w.pullCtx.Err() != nil {
				return
			}
			w.opts.Logf("worker %s: pull: %v", w.opts.NodeID, err)
			//cenlint:volatile retry pause after a failed coordinator round-trip: liveness pacing only
			timer := time.NewTimer(w.opts.RetryWait)
			select {
			case <-timer.C:
			case <-w.pullCtx.Done():
				timer.Stop()
				return
			}
		case status == http.StatusGone:
			w.opts.Logf("worker %s: coordinator draining; stopping pulls", w.opts.NodeID)
			return
		case lease != nil:
			w.execute(lease)
		}
	}
}

// pull performs one GET /v1/cluster/pull round-trip. A nil lease with
// nil error means "nothing available" (204).
func (w *Worker) pull() (*wire.JobLease, int, error) {
	req, err := http.NewRequestWithContext(w.pullCtx, http.MethodGet,
		w.opts.CoordinatorURL+"/v1/cluster/pull?node="+w.opts.NodeID, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNoContent, http.StatusGone:
		return nil, resp.StatusCode, nil
	default:
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, resp.StatusCode, fmt.Errorf("cluster: pull status %d: %s", resp.StatusCode, raw)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 2<<20))
	if err != nil {
		return nil, resp.StatusCode, err
	}
	payload, ok := wire.NewReader(body).Next()
	if !ok {
		return nil, resp.StatusCode, fmt.Errorf("cluster: pull body is not a wire frame")
	}
	lease, err := wire.DecodeJobLease(payload)
	if err != nil {
		return nil, resp.StatusCode, err
	}
	return lease, resp.StatusCode, nil
}

// execute runs one lease: decode the spec, run it on the local
// executor, persist the result to the local store (durable before
// anything is acknowledged), then push the digest-bearing completion.
func (w *Worker) execute(lease *wire.JobLease) {
	comp := &wire.Completion{ID: lease.ID, Node: w.opts.NodeID, Attempt: lease.Attempt}
	payload, digest, err := w.runLease(lease)
	if err != nil {
		comp.Transient = serve.IsTransient(err)
		comp.Error = err.Error()
		w.opts.Obs.Counter("censerved_cluster_exec_failures_total", obs.L("node", w.opts.NodeID)).Inc()
		w.opts.Logf("worker %s: job %s attempt %d failed (transient=%v): %v",
			w.opts.NodeID, lease.ID, lease.Attempt, comp.Transient, err)
	} else {
		comp.Digest = digest
		w.opts.Obs.Counter("censerved_cluster_exec_total", obs.L("node", w.opts.NodeID)).Inc()
		w.opts.Logf("worker %s: job %s attempt %d done, digest %.12s…, %d bytes",
			w.opts.NodeID, lease.ID, lease.Attempt, digest, len(payload))
	}
	if err := w.complete(comp); err != nil {
		w.opts.Logf("worker %s: job %s: pushing completion: %v", w.opts.NodeID, lease.ID, err)
	}
}

// runLease executes the lease and persists the result locally. A store
// write failure is a transient error: the bytes are not durable here,
// so the coordinator must place the replica elsewhere (or here, later).
func (w *Worker) runLease(lease *wire.JobLease) (json.RawMessage, string, error) {
	var spec serve.JobSpec
	if err := json.Unmarshal(lease.Spec, &spec); err != nil {
		return nil, "", fmt.Errorf("cluster: decoding lease spec: %w", err)
	}
	payload, err := w.runGuarded(spec)
	if err != nil {
		return nil, "", err
	}
	digest := serve.PayloadDigest(payload)
	if err := w.store.PutResult(lease.ID, spec, payload, digest); err != nil {
		return nil, "", serve.Transient(fmt.Errorf("cluster: persisting result locally: %w", err))
	}
	return payload, digest, nil
}

// runGuarded runs the executor behind a panic barrier.
func (w *Worker) runGuarded(spec serve.JobSpec) (payload json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			payload, err = nil, fmt.Errorf("cluster: job panicked: %v", r)
		}
	}()
	return w.run(spec)
}

// complete pushes one completion to the coordinator. Uses its own
// context: a drain must not cancel the acknowledgement of work that
// already happened.
func (w *Worker) complete(comp *wire.Completion) error {
	body := wire.AppendFrame(nil, wire.AppendCompletion(nil, comp))
	resp, err := w.opts.Client.Post(w.opts.CoordinatorURL+"/v1/cluster/complete",
		"application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("cluster: complete status %d: %s", resp.StatusCode, raw)
	}
	return nil
}

// handleLocal serves the raw local payload bytes of one result.
func (w *Worker) handleLocal(rw http.ResponseWriter, r *http.Request) {
	e, ok := w.store.Get(r.PathValue("id"))
	if !ok || e.State != serve.StateDone || e.Payload == nil {
		http.Error(rw, "no local result", http.StatusNotFound)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	_, _ = rw.Write(e.Payload)
}

// handleRepair installs a pushed replica: a JobLease frame (for the
// spec) followed by a Completion frame (payload + digest). The digest
// is re-verified before anything is persisted — a repair push is not
// more trusted than a worker.
func (w *Worker) handleRepair(rw http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(rw, r.Body, 64<<20))
	if err != nil {
		http.Error(rw, "reading repair: "+err.Error(), http.StatusBadRequest)
		return
	}
	rd := wire.NewReader(body)
	leaseRaw, ok := rd.Next()
	if !ok {
		http.Error(rw, "repair body missing lease frame", http.StatusBadRequest)
		return
	}
	compRaw, ok := rd.Next()
	if !ok {
		http.Error(rw, "repair body missing completion frame", http.StatusBadRequest)
		return
	}
	lease, err := wire.DecodeJobLease(leaseRaw)
	if err != nil {
		http.Error(rw, "decoding repair lease: "+err.Error(), http.StatusBadRequest)
		return
	}
	comp, err := wire.DecodeCompletion(compRaw)
	if err != nil {
		http.Error(rw, "decoding repair completion: "+err.Error(), http.StatusBadRequest)
		return
	}
	if comp.ID != lease.ID {
		http.Error(rw, "repair lease/completion job IDs disagree", http.StatusBadRequest)
		return
	}
	if serve.PayloadDigest(comp.Payload) != comp.Digest {
		http.Error(rw, "repair payload does not hash to its digest", http.StatusBadRequest)
		return
	}
	var spec serve.JobSpec
	if err := json.Unmarshal(lease.Spec, &spec); err != nil {
		http.Error(rw, "decoding repair spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := w.store.PutResult(comp.ID, spec, comp.Payload, comp.Digest); err != nil {
		http.Error(rw, "persisting repair: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.opts.Obs.Counter("censerved_cluster_repairs_received_total", obs.L("node", w.opts.NodeID)).Inc()
	w.opts.Logf("worker %s: repaired result %s installed", w.opts.NodeID, comp.ID)
	rw.WriteHeader(http.StatusNoContent)
}

// handleDigests answers anti-entropy queries over the local store:
// without detail, one DigestRange frame summarizing every done result
// whose key hash falls in [start, end]; with detail=1, one Completion
// frame (ID + digest, no payload) per such result, in ID order.
func (w *Worker) handleDigests(rw http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	start, err := parseUint(q.Get("start"))
	if err != nil {
		http.Error(rw, "bad start: "+err.Error(), http.StatusBadRequest)
		return
	}
	end, err := parseUint(q.Get("end"))
	if err != nil {
		http.Error(rw, "bad end: "+err.Error(), http.StatusBadRequest)
		return
	}
	pairs := make(map[string]string)
	for _, e := range w.store.List(serve.StateDone) {
		if e.Digest == "" {
			continue
		}
		if h := hashKey(e.ID); h < start || h > end {
			continue
		}
		pairs[e.ID] = e.Digest
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	if q.Get("detail") == "" {
		count, digest := setDigest(pairs)
		dr := &wire.DigestRange{Start: start, End: end, Count: count, Digest: digest}
		_, _ = rw.Write(wire.AppendFrame(nil, wire.AppendDigestRange(nil, dr)))
		return
	}
	ids := make([]string, 0, len(pairs))
	for id := range pairs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var body []byte
	for _, id := range ids {
		comp := &wire.Completion{ID: id, Node: w.opts.NodeID, Digest: pairs[id]}
		body = wire.AppendFrame(body, wire.AppendCompletion(nil, comp))
	}
	_, _ = rw.Write(body)
}

func parseUint(s string) (uint64, error) {
	var v uint64
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
		return 0, err
	}
	return v, nil
}
