package cluster

// Anti-entropy: the coordinator's background consistency sweep. The key
// hash space is cut into 64 fixed buckets; for each bucket, each node
// is asked for a rolled-up digest of the (job ID, result digest) pairs
// it holds there, and only on mismatch does the sweep pay for the
// per-job detail listing and repair pushes. Bucket order is a seeded
// permutation, so two coordinators with the same seed sweep in the same
// order and a partial sweep covers a deterministic prefix.
//
// Divergence classes and their handling:
//   - missing: the coordinator's store says the node is a replica, the
//     node has no (or wrong-digest) copy → push the verified bytes.
//   - extra: the node holds results the coordinator does not count —
//     stolen executions whose completion lost the race, or leftovers of
//     conflicted jobs. Benign; logged, never deleted (an operator
//     investigating a conflict wants the evidence intact).

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"

	"cendev/internal/serve"
	"cendev/internal/wire"
)

// SweepReport summarizes one anti-entropy pass.
type SweepReport struct {
	BucketsChecked  int
	RangesMismatch  int
	Repaired        int
	Extras          int
	Unrepairable    []string // job IDs with no healthy replica left
	QueryFailures   int      // nodes that could not be asked
	ResultsVerified int64    // replica-result pairs confirmed in place
}

// Sweep runs one full anti-entropy pass over every bucket and node.
func (c *Coordinator) Sweep() (SweepReport, error) {
	var rep SweepReport
	// expected[node][bucket] = jobID → digest, from the coordinator's
	// durable view of who holds what.
	expected := make(map[string]map[int]map[string]string)
	type jobInfo struct {
		spec     serve.JobSpec
		digest   string
		replicas []string
	}
	jobs := make(map[string]jobInfo)
	for _, e := range c.srv.Store().List(serve.StateDone) {
		if e.Digest == "" || len(e.Replicas) == 0 {
			continue
		}
		jobs[e.ID] = jobInfo{spec: e.Spec, digest: e.Digest, replicas: e.Replicas}
		b := bucketOf(e.ID)
		for _, n := range e.Replicas {
			if expected[n] == nil {
				expected[n] = make(map[int]map[string]string)
			}
			if expected[n][b] == nil {
				expected[n][b] = make(map[string]string)
			}
			expected[n][b][e.ID] = e.Digest
		}
	}

	rng := rand.New(rand.NewSource(c.opts.Seed))
	order := rng.Perm(Buckets)
	nodes := c.ring.Nodes()
	for _, b := range order {
		rep.BucketsChecked++
		start, end := bucketRange(b)
		for _, node := range nodes {
			exp := expected[node][b]
			wantCount, wantDigest := setDigest(exp)
			got, err := c.queryRange(node, start, end)
			if err != nil {
				rep.QueryFailures++
				c.opts.Logf("cluster: sweep: bucket %d node %s unreachable: %v", b, node, err)
				continue
			}
			if got.Count == wantCount && got.Digest == wantDigest {
				rep.ResultsVerified += wantCount
				continue
			}
			rep.RangesMismatch++
			c.opts.Obs.Counter("censerved_cluster_antientropy_mismatches_total").Inc()
			detail, err := c.queryDetail(node, start, end)
			if err != nil {
				rep.QueryFailures++
				c.opts.Logf("cluster: sweep: bucket %d node %s detail failed: %v", b, node, err)
				continue
			}
			ids := make([]string, 0, len(exp))
			for id := range exp {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			for _, id := range ids {
				want := exp[id]
				if detail[id] == want {
					rep.ResultsVerified++
					continue
				}
				info := jobs[id]
				if c.repairOne(id, info.spec, want, info.replicas, node) {
					rep.Repaired++
				} else {
					rep.Unrepairable = append(rep.Unrepairable, id)
				}
			}
			for id, d := range detail {
				if _, want := exp[id]; !want {
					rep.Extras++
					c.opts.Logf("cluster: sweep: node %s holds uncounted result %s (digest %.12s…) — benign, kept", node, id, d)
				}
			}
		}
	}
	sort.Strings(rep.Unrepairable)
	return rep, nil
}

// repairOne restores one missing/corrupt replica on target by reading
// verified bytes from any healthy replica and pushing them.
func (c *Coordinator) repairOne(id string, spec serve.JobSpec, digest string, replicas []string, target string) bool {
	sources := make([]string, 0, len(replicas))
	for _, n := range replicas {
		if n != target {
			sources = append(sources, n)
		}
	}
	payload, _, _ := c.readReplicas(id, digest, sources)
	if payload == nil {
		c.opts.Logf("cluster: sweep: job %s: no healthy source replica to repair %s from", id, target)
		return false
	}
	repaired := c.repairReplicas(id, spec, payload, digest, []string{target})
	return len(repaired) == 1
}

// queryRange fetches one node's rolled-up digest for [start, end].
func (c *Coordinator) queryRange(node string, start, end uint64) (*wire.DigestRange, error) {
	body, err := c.digestsGET(node, start, end, false)
	if err != nil {
		return nil, err
	}
	payload, ok := wire.NewReader(body).Next()
	if !ok {
		return nil, fmt.Errorf("cluster: digest response is not a wire frame")
	}
	return wire.DecodeDigestRange(payload)
}

// queryDetail fetches one node's per-job digests for [start, end].
func (c *Coordinator) queryDetail(node string, start, end uint64) (map[string]string, error) {
	body, err := c.digestsGET(node, start, end, true)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string)
	rd := wire.NewReader(body)
	for {
		payload, ok := rd.Next()
		if !ok {
			break
		}
		comp, err := wire.DecodeCompletion(payload)
		if err != nil {
			return nil, err
		}
		out[comp.ID] = comp.Digest
	}
	if _, torn := rd.Torn(); torn {
		return nil, fmt.Errorf("cluster: digest detail stream torn")
	}
	return out, nil
}

func (c *Coordinator) digestsGET(node string, start, end uint64, detail bool) ([]byte, error) {
	base, ok := c.opts.Peers[node]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown node %q", node)
	}
	url := fmt.Sprintf("%s/v1/cluster/digests?start=%d&end=%d", base, start, end)
	if detail {
		url += "&detail=1"
	}
	resp, err := c.opts.Client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 64<<20))
}

// DrainBackend implements serve.BackendDrainer: once serve's own
// workers have finished (so no job is mid-replication), stop granting
// leases, release parked long-pollers, and run a final sweep so the
// process only exits with every acknowledged job verified durable on
// its full replica set.
func (c *Coordinator) DrainBackend() error {
	c.mu.Lock()
	c.draining = true
	pending := len(c.jobs)
	c.broadcastLocked()
	c.mu.Unlock()
	if pending > 0 {
		// Cannot happen through serve's drain ordering (queue closes and
		// workers finish first); guard anyway.
		return fmt.Errorf("cluster: drain with %d jobs still in flight", pending)
	}
	rep, err := c.Sweep()
	if err != nil {
		return fmt.Errorf("cluster: drain sweep: %w", err)
	}
	c.opts.Logf("cluster: drain sweep: %d results verified, %d repaired, %d unrepairable, %d query failures",
		rep.ResultsVerified, rep.Repaired, len(rep.Unrepairable), rep.QueryFailures)
	if len(rep.Unrepairable) > 0 {
		return fmt.Errorf("cluster: drain left %d results unrepairable: %v", len(rep.Unrepairable), rep.Unrepairable)
	}
	return nil
}
