package cluster

// Read path and read-repair. The coordinator's store holds a done job's
// digest and replica set but not its payload; GET /v1/results/{id}
// lands here (via serve's ResultFetcher seam) and is answered by the
// first replica whose bytes hash to the recorded digest. A replica that
// is missing or corrupt gets the verified bytes pushed back — reads
// heal the cluster as a side effect — and the durable replica set is
// rewritten if it changed.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"cendev/internal/serve"
	"cendev/internal/wire"
)

// FetchResult implements serve.ResultFetcher.
func (c *Coordinator) FetchResult(id string) (json.RawMessage, error) {
	e, ok := c.srv.Store().Get(id)
	if !ok {
		return nil, fmt.Errorf("cluster: unknown job %s", id)
	}
	if e.Digest == "" {
		return nil, fmt.Errorf("cluster: job %s has no recorded digest", id)
	}
	payload, healthy, broken := c.readReplicas(id, e.Digest, e.Replicas)
	if payload == nil {
		return nil, fmt.Errorf("cluster: no replica of %s served digest %.12s… (replicas %v)",
			id, e.Digest, e.Replicas)
	}
	if len(broken) > 0 {
		repaired := c.repairReplicas(id, e.Spec, payload, e.Digest, broken)
		healthy = append(healthy, repaired...)
		sort.Strings(healthy)
		if !equalStrings(healthy, e.Replicas) {
			if err := c.srv.Store().UpdateReplicas(id, healthy); err != nil {
				c.opts.Logf("cluster: job %s: persisting repaired replica set: %v", id, err)
			}
		}
	}
	return payload, nil
}

// readReplicas tries each recorded replica in sorted order and returns
// the first digest-verified payload, the replicas that served or hold
// it, and the replicas that failed verification or the read.
func (c *Coordinator) readReplicas(id, digest string, replicas []string) (payload json.RawMessage, healthy, broken []string) {
	order := append([]string(nil), replicas...)
	sort.Strings(order)
	for _, node := range order {
		raw, err := c.readLocal(node, id)
		if err != nil {
			c.opts.Logf("cluster: job %s: replica %s unreadable: %v", id, node, err)
			broken = append(broken, node)
			continue
		}
		if serve.PayloadDigest(raw) != digest {
			c.opts.Logf("cluster: job %s: replica %s digest mismatch", id, node)
			broken = append(broken, node)
			continue
		}
		healthy = append(healthy, node)
		if payload == nil {
			payload = raw
		}
	}
	return payload, healthy, broken
}

// readLocal fetches one replica's local copy of a result.
func (c *Coordinator) readLocal(node, id string) ([]byte, error) {
	base, ok := c.opts.Peers[node]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown node %q", node)
	}
	resp, err := c.opts.Client.Get(base + "/v1/cluster/local/" + id)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 64<<20))
}

// repairReplicas pushes verified bytes to each broken replica and
// returns the nodes that accepted the repair.
func (c *Coordinator) repairReplicas(id string, spec serve.JobSpec, payload []byte, digest string, targets []string) []string {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		c.opts.Logf("cluster: job %s: marshaling spec for repair: %v", id, err)
		return nil
	}
	var repaired []string
	for _, node := range targets {
		if err := c.pushRepair(node, id, specJSON, payload, digest); err != nil {
			c.opts.Logf("cluster: job %s: repair push to %s failed: %v", id, node, err)
			continue
		}
		c.opts.Obs.Counter("censerved_cluster_repairs_total").Inc()
		c.opts.Logf("cluster: job %s: repaired replica on %s", id, node)
		repaired = append(repaired, node)
	}
	return repaired
}

// pushRepair installs one verified result on one node: a JobLease frame
// (carrying the spec, so the target can persist a complete record)
// followed by a Completion frame carrying the payload and digest.
func (c *Coordinator) pushRepair(node, id string, specJSON, payload []byte, digest string) error {
	base, ok := c.opts.Peers[node]
	if !ok {
		return fmt.Errorf("cluster: unknown node %q", node)
	}
	lease := wire.AppendJobLease(nil, &wire.JobLease{ID: id, Node: node, Owner: node, Spec: specJSON})
	comp := wire.AppendCompletion(nil, &wire.Completion{ID: id, Node: node, Digest: digest, Payload: payload})
	body := wire.AppendFrame(nil, lease)
	body = wire.AppendFrame(body, comp)
	resp, err := c.opts.Client.Post(base+"/v1/cluster/repair", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
