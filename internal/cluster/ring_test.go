package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

// TestRingOwnersDeterministic: placement is a pure function of
// (members, key) — two independently built rings agree on every owner
// set, owners are distinct, and replication clamps to the member count.
func TestRingOwnersDeterministic(t *testing.T) {
	nodes := []string{"w3", "w1", "w2"} // construction order must not matter
	a := NewRing(nodes, 0)
	b := NewRing([]string{"w1", "w2", "w3"}, 0)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("j-%08d", i)
		oa, ob := a.Owners(key, 2), b.Owners(key, 2)
		if !reflect.DeepEqual(oa, ob) {
			t.Fatalf("key %s: owner sets diverged: %v vs %v", key, oa, ob)
		}
		if len(oa) != 2 || oa[0] == oa[1] {
			t.Fatalf("key %s: owners %v not 2 distinct nodes", key, oa)
		}
	}
	if got := a.Owners("j-1", 9); len(got) != 3 {
		t.Fatalf("replication beyond membership: %v, want all 3 nodes", got)
	}
}

// TestRingBalance: virtual nodes keep primary-owner load roughly even —
// no node should own more than ~2× its fair share of keys.
func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"w1", "w2", "w3", "w4"}, 0)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owners(fmt.Sprintf("j-%08d", i), 1)[0]]++
	}
	fair := keys / 4
	for n, c := range counts {
		if c > 2*fair || c < fair/2 {
			t.Errorf("node %s owns %d of %d keys (fair share %d): ring unbalanced", n, c, keys, fair)
		}
	}
}

// TestRingStability: removing one node only moves keys that the removed
// node owned — consistent hashing's defining property.
func TestRingStability(t *testing.T) {
	before := NewRing([]string{"w1", "w2", "w3"}, 0)
	after := NewRing([]string{"w1", "w3"}, 0)
	moved, total := 0, 2000
	for i := 0; i < total; i++ {
		key := fmt.Sprintf("j-%08d", i)
		ob, oa := before.Owners(key, 1)[0], after.Owners(key, 1)[0]
		if ob != oa {
			moved++
			if ob != "w2" {
				t.Fatalf("key %s moved from surviving node %s to %s", key, ob, oa)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved; w2 owned some of 2000 keys")
	}
}
