package cluster

// Per-node fault injection: one worker's disk dies under it (chaos VFS
// power cut), and the cluster routes around it — its executions fail
// transiently because the result cannot be made durable locally, the
// replica slots reassign to healthy nodes, and every job still finishes
// with verified digests.

import (
	"fmt"
	"testing"

	"cendev/internal/obs"
	"cendev/internal/serve"
	"cendev/internal/vfs"
)

func TestClusterSurvivesWorkerDiskFailure(t *testing.T) {
	chaos := vfs.NewChaos(42)
	tc := startCluster(t, clusterConfig{
		nodes:       []string{"w1", "w2"},
		replication: 1,
		stealAfter:  2,
		hookFor:     echoHook,
		workerFS:    map[string]WorkerOptions{"w1": {FS: chaos}},
	})
	// The store opened fine; now the virtual power dies on w1's disk.
	// Every subsequent store write there fails, so w1 can execute but
	// never make a result durable — the contract says it must report
	// transient failure, not acknowledge bytes it could lose.
	chaos.SetCrashAtOp(chaos.Ops() + 1)

	ids := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		ids = append(ids, tc.submit(serve.JobSpec{
			Kind: serve.KindCenProbe, Endpoint: fmt.Sprintf("ep-%d", i), Seed: int64(i + 1),
		}))
	}
	for _, id := range ids {
		st := tc.waitTerminal(id)
		if st.State != serve.StateDone {
			t.Fatalf("job %s: state %s (%s)", id, st.State, st.Error)
		}
		if len(st.Replicas) != 1 || st.Replicas[0] != "w2" {
			t.Fatalf("job %s: replicas %v, want [w2] — w1 has no durable disk", id, st.Replicas)
		}
		// The payload must be servable and digest-verified end to end.
		got := tc.fetchResult(id)
		if serve.PayloadDigest(got) != st.Digest {
			t.Fatalf("job %s: served payload does not hash to recorded digest", id)
		}
	}
	if fails := tc.reg.Counter("censerved_cluster_exec_failures_total", obs.L("node", "w1")).Value(); fails == 0 {
		// With 6 jobs on a 2-node ring some land on w1 first; at least
		// one transient failure must have been recorded.
		t.Fatal("no transient execution failures recorded on the chaotic node")
	}
}
