package endpoint

import (
	"net/netip"
	"strings"
	"testing"

	"cendev/internal/dnsgram"
	"cendev/internal/httpgram"
	"cendev/internal/tlsgram"
)

const domain = "www.hosted.example"

func TestHandleHTTPServesContent(t *testing.T) {
	s := NewServer(domain)
	res := s.HandleHTTP(httpgram.NewRequest(domain).Render())
	if res.Status != 200 || res.ServedDomain != domain {
		t.Fatalf("result = %+v", res)
	}
	if res.Body != ContentFor(domain, "/") {
		t.Errorf("body = %q", res.Body)
	}
	raw := string(res.Render())
	if !strings.HasPrefix(raw, "HTTP/1.1 200 OK\r\n") {
		t.Errorf("rendered = %q", raw)
	}
}

func TestHandleHTTPStatusCodes(t *testing.T) {
	s := NewServer(domain)
	cases := []struct {
		name   string
		mutate func(*httpgram.Request)
		status int
	}{
		{"bad version", func(r *httpgram.Request) { r.Version = "HTTP/9" }, 505},
		{"spaced version", func(r *httpgram.Request) { r.Version = "HTTP/ 1.1" }, 505},
		{"unknown method", func(r *httpgram.Request) { r.Method = "XXXX" }, 400},
		{"truncated method", func(r *httpgram.Request) { r.Method = "GE" }, 400},
		{"bad delimiter", func(r *httpgram.Request) { r.Delimiter = "\n" }, 400},
		{"mangled host word", func(r *httpgram.Request) { r.HostWord = "ost:" }, 400},
		{"wrong vhost", func(r *httpgram.Request) { r.Hostname = "www.other.example" }, 403},
		{"padded host", func(r *httpgram.Request) { r.Hostname = "**" + domain + "*" }, 403},
		{"PUT method", func(r *httpgram.Request) { r.Method = "PUT" }, 405},
		{"PATCH method", func(r *httpgram.Request) { r.Method = "PATCH" }, 405},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httpgram.NewRequest(domain)
			tc.mutate(req)
			res := s.HandleHTTP(req.Render())
			if res.Status != tc.status {
				t.Errorf("status = %d, want %d", res.Status, tc.status)
			}
		})
	}
}

func TestAlternatePathServed(t *testing.T) {
	s := NewServer(domain)
	req := httpgram.NewRequest(domain)
	req.Path = "/about"
	res := s.HandleHTTP(req.Render())
	if res.Status != 200 || !strings.Contains(res.Body, "/about") {
		t.Errorf("result = %+v", res)
	}
}

func TestTolerantPaddingServer(t *testing.T) {
	s := NewServer(domain)
	s.TolerantPadding = true
	req := httpgram.NewRequest("**" + domain + "*")
	res := s.HandleHTTP(req.Render())
	if res.Status != 200 || res.ServedDomain != domain {
		t.Errorf("tolerant server should strip pads: %+v", res)
	}
}

func TestWildcardSubdomainServer(t *testing.T) {
	s := NewServer(domain)
	s.WildcardSubdomains = true
	req := httpgram.NewRequest("wiki.hosted.example")
	res := s.HandleHTTP(req.Render())
	if res.Status != 200 {
		t.Errorf("wildcard server should serve subdomains: %+v", res)
	}
	req2 := httpgram.NewRequest("wiki.unrelated.example")
	if res2 := s.HandleHTTP(req2.Render()); res2.Status != 403 {
		t.Errorf("unrelated domain: %+v", res2)
	}
}

func TestHostMatchingCaseInsensitive(t *testing.T) {
	s := NewServer(domain)
	req := httpgram.NewRequest(strings.ToUpper(domain))
	if res := s.HandleHTTP(req.Render()); res.Status != 200 {
		t.Errorf("case-folded vhost match failed: %+v", res)
	}
}

func TestHandleTLSSuccess(t *testing.T) {
	s := NewServer(domain)
	res := s.HandleTLS(tlsgram.NewClientHello(domain).Serialize())
	if !res.OK || res.ServedDomain != domain {
		t.Fatalf("result = %+v", res)
	}
	got, ok := IsServerHello(res.Response)
	if !ok || got != domain {
		t.Errorf("IsServerHello = %q, %v", got, ok)
	}
}

func TestHandleTLSUnknownSNI(t *testing.T) {
	s := NewServer(domain)
	res := s.HandleTLS(tlsgram.NewClientHello("www.other.example").Serialize())
	if res.OK {
		t.Fatal("unknown SNI should not handshake")
	}
	alert, ok := IsAlert(res.Response)
	if !ok || alert != AlertUnrecognizedName {
		t.Errorf("alert = %q, %v", alert, ok)
	}
}

func TestHandleTLSNoSNIServesDefault(t *testing.T) {
	s := NewServer(domain, "alt.example")
	ch := tlsgram.NewClientHello(domain)
	ch.RemoveExtension(tlsgram.ExtServerName)
	res := s.HandleTLS(ch.Serialize())
	if !res.OK || res.ServedDomain != domain {
		t.Errorf("no-SNI handshake should serve default cert: %+v", res)
	}
}

func TestHandleTLSGarbage(t *testing.T) {
	s := NewServer(domain)
	res := s.HandleTLS([]byte("not tls at all"))
	if res.OK {
		t.Fatal("garbage should not handshake")
	}
	if alert, _ := IsAlert(res.Response); alert != AlertDecodeError {
		t.Errorf("alert = %q", alert)
	}
}

func TestHandleTLSUnsupportedSuites(t *testing.T) {
	s := NewServer(domain)
	ch := tlsgram.NewClientHello(domain)
	ch.CipherSuites = []uint16{0x9999}
	res := s.HandleTLS(ch.Serialize())
	if res.OK {
		t.Fatal("unknown-suite-only hello should fail")
	}
	if alert, _ := IsAlert(res.Response); alert != AlertHandshakeFailure {
		t.Errorf("alert = %q", alert)
	}
	ch.CipherSuites = nil
	if res := s.HandleTLS(ch.Serialize()); res.OK {
		t.Error("empty-suite hello should fail")
	}
}

func TestTolerantPaddingTLS(t *testing.T) {
	s := NewServer(domain)
	s.TolerantPadding = true
	ch := tlsgram.NewClientHello("***" + domain)
	res := s.HandleTLS(ch.Serialize())
	if !res.OK {
		t.Errorf("tolerant server should strip SNI pads: %+v", res)
	}
}

func TestIsServerHelloNegative(t *testing.T) {
	if _, ok := IsServerHello([]byte("HTTP/1.1 200 OK")); ok {
		t.Error("HTTP response misdetected as ServerHello")
	}
	if _, ok := IsAlert([]byte("HTTP/1.1 200 OK")); ok {
		t.Error("HTTP response misdetected as alert")
	}
}

func TestRenderUnknownStatus(t *testing.T) {
	raw := string(HTTPResult{Status: 599, Body: "x"}.Render())
	if !strings.HasPrefix(raw, "HTTP/1.1 599 Unknown\r\n") {
		t.Errorf("rendered = %q", raw)
	}
}

func TestBareDomainRedirects(t *testing.T) {
	s := NewServer(domain) // hosts www.hosted.example
	req := httpgram.NewRequest("hosted.example")
	res := s.HandleHTTP(req.Render())
	if res.Status != 301 {
		t.Errorf("bare-domain request status = %d, want 301", res.Status)
	}
	if !strings.Contains(res.Body, domain) {
		t.Errorf("redirect body = %q", res.Body)
	}
}

func TestResolverHandleDNS(t *testing.T) {
	addr := netip.MustParseAddr("192.0.2.10")
	r := NewResolver(map[string]netip.Addr{"www.hosted.example": addr})
	q := dnsgram.NewQuery(5, "www.hosted.example")
	resp, err := dnsgram.ParseResponse(r.HandleDNS(q.Serialize()))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 || resp.Answers[0] != addr {
		t.Errorf("answers = %v", resp.Answers)
	}
	nx, err := dnsgram.ParseResponse(r.HandleDNS(dnsgram.NewQuery(6, "gone.example").Serialize()))
	if err != nil {
		t.Fatal(err)
	}
	if nx.RCode != dnsgram.RCodeNXDomain {
		t.Errorf("rcode = %d, want NXDOMAIN", nx.RCode)
	}
	if r.HandleDNS([]byte("junk")) != nil {
		t.Error("garbage should be dropped silently")
	}
}
