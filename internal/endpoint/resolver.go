package endpoint

import (
	"net/netip"

	"cendev/internal/dnsgram"
)

// Resolver is a simulated DNS resolver for the DNS measurement extension:
// it answers A queries from its zone and NXDOMAINs everything else.
type Resolver struct {
	// Zone maps exact domain names to their legitimate addresses.
	Zone map[string]netip.Addr
}

// NewResolver returns a resolver serving the given zone.
func NewResolver(zone map[string]netip.Addr) *Resolver {
	return &Resolver{Zone: zone}
}

// HandleDNS parses a raw query and produces the raw response, or nil for
// unparseable input (real resolvers drop garbage silently).
func (r *Resolver) HandleDNS(raw []byte) []byte {
	q, err := dnsgram.ParseQuery(raw)
	if err != nil {
		return nil
	}
	if addr, ok := r.Zone[q.Name]; ok && q.Type == dnsgram.TypeA {
		return dnsgram.Answer(q, addr).Serialize()
	}
	return dnsgram.NXDomain(q).Serialize()
}
