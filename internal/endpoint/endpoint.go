// Package endpoint implements the simulated servers measurements are sent
// to: HTTP virtual hosts and TLS responders with configurable strictness,
// plus banner services on auxiliary ports. Endpoint behaviour matters for
// CenFuzz's circumvention verdicts (§6.3): a fuzzed request only counts as
// circumvention when it both evades the censor and elicits the intended
// resource from the server, and real servers answer odd requests with
// statuses like 400, 403, 301, and 505.
package endpoint

import (
	"fmt"
	"strings"

	"cendev/internal/httpgram"
	"cendev/internal/tlsgram"
)

// Server is one endpoint: a web server hosting one or more domains.
type Server struct {
	// Domains are the virtual hosts served (exact hostnames).
	Domains []string
	// WildcardSubdomains serves any subdomain of a configured domain's
	// registrable domain (how wiki.dailymotion.com fetched legitimate
	// content in KZ, §6.3).
	WildcardSubdomains bool
	// TolerantPadding strips leading/trailing non-hostname characters from
	// the Host header before matching (how padded hostnames fetched
	// legitimate content from some servers, §6.3).
	TolerantPadding bool
	// Services maps extra open ports to banners (most infrastructure
	// endpoints expose a few).
	Services map[int]string
}

// NewServer returns a server hosting the given domains.
func NewServer(domains ...string) *Server {
	return &Server{Domains: domains}
}

// HTTPResult is the server's reply to one HTTP request.
type HTTPResult struct {
	Status int
	Body   string
	// ServedDomain is the vhost that handled the request ("" on errors).
	ServedDomain string
}

// Render produces the raw HTTP response bytes.
func (r HTTPResult) Render() []byte {
	reason := map[int]string{
		200: "OK", 301: "Moved Permanently", 400: "Bad Request",
		403: "Forbidden", 404: "Not Found", 405: "Method Not Allowed",
		505: "HTTP Version Not Supported",
	}[r.Status]
	if reason == "" {
		reason = "Unknown"
	}
	return []byte(fmt.Sprintf("HTTP/1.1 %d %s\r\nContent-Type: text/html\r\nConnection: close\r\n\r\n%s",
		r.Status, reason, r.Body))
}

// normalizeHost strips padding characters a tolerant server ignores.
func normalizeHost(host string) string {
	return strings.Trim(host, "*#@!$%^&() ")
}

// matchDomain resolves the vhost for a Host header value.
func (s *Server) matchDomain(host string) (string, bool) {
	h := strings.ToLower(host)
	if s.TolerantPadding {
		h = normalizeHost(h)
	}
	for _, d := range s.Domains {
		if h == strings.ToLower(d) {
			return d, true
		}
	}
	if s.WildcardSubdomains {
		for _, d := range s.Domains {
			reg := registrable(strings.ToLower(d))
			if h == reg || strings.HasSuffix(h, "."+reg) {
				return d, true
			}
		}
	}
	return "", false
}

func registrable(host string) string {
	labels := strings.Split(host, ".")
	if len(labels) <= 2 {
		return host
	}
	return strings.Join(labels[len(labels)-2:], ".")
}

// HandleHTTP parses raw request bytes and produces the server's response,
// mirroring how conforming origin servers reject ungrammatical requests.
func (s *Server) HandleHTTP(raw []byte) HTTPResult {
	p := httpgram.Parse(raw)
	switch {
	case p.HasViolation(httpgram.ViolationBadRequestLine),
		p.HasViolation(httpgram.ViolationBadDelimiter),
		p.HasViolation(httpgram.ViolationMalformedHeader),
		p.HasViolation(httpgram.ViolationMissingHost):
		return HTTPResult{Status: 400, Body: errorPage(400)}
	case p.HasViolation(httpgram.ViolationBadVersion):
		return HTTPResult{Status: 505, Body: errorPage(505)}
	case p.HasViolation(httpgram.ViolationUnknownMethod):
		return HTTPResult{Status: 400, Body: errorPage(400)}
	}
	domain, ok := s.matchDomain(p.Host)
	if !ok {
		// A request for the bare registrable domain of a hosted www. vhost
		// gets the canonical 301 redirect (one of the §6.3 status codes);
		// anything else is a vhost mismatch.
		for _, d := range s.Domains {
			if strings.EqualFold("www."+p.Host, d) {
				return HTTPResult{
					Status: 301,
					Body:   fmt.Sprintf("<html><body>moved to %s</body></html>", d),
				}
			}
		}
		return HTTPResult{Status: 403, Body: errorPage(403)}
	}
	switch p.Method {
	case "GET", "HEAD", "POST":
		return HTTPResult{
			Status:       200,
			Body:         ContentFor(domain, p.Path),
			ServedDomain: domain,
		}
	default: // PUT, PATCH, DELETE, OPTIONS, TRACE on static content
		return HTTPResult{Status: 405, Body: errorPage(405)}
	}
}

// ContentFor is the canonical page body served for a domain and path; the
// fuzzer compares against it to decide circumvention.
func ContentFor(domain, path string) string {
	return fmt.Sprintf("<html><head><title>%s</title></head><body>content of %s%s</body></html>",
		domain, domain, path)
}

func errorPage(status int) string {
	return fmt.Sprintf("<html><body><h1>%d</h1></body></html>", status)
}

// TLSResult is the server's reply to one Client Hello.
type TLSResult struct {
	// OK is true when the handshake proceeded (Server Hello sent).
	OK bool
	// Alert carries the TLS alert description when OK is false.
	Alert string
	// ServedDomain is the certificate's domain when OK.
	ServedDomain string
	// Response is the raw reply record.
	Response []byte
}

// TLS alert markers used in simulated handshakes.
const (
	AlertUnrecognizedName  = "unrecognized_name"
	AlertHandshakeFailure  = "handshake_failure"
	AlertProtocolVersion   = "protocol_version"
	AlertDecodeError       = "decode_error"
	serverHelloMagic       = "\x16\x03\x03SERVERHELLO:"
	alertMagic             = "\x15\x03\x03ALERT:"
	minSupportedTLSVersion = tlsgram.VersionTLS10
)

// HandleTLS parses a raw Client Hello and produces the handshake outcome.
func (s *Server) HandleTLS(raw []byte) TLSResult {
	ch, err := tlsgram.Parse(raw)
	if err != nil {
		return alertResult(AlertDecodeError)
	}
	if ch.EffectiveMaxVersion() < minSupportedTLSVersion {
		return alertResult(AlertProtocolVersion)
	}
	if len(ch.CipherSuites) == 0 {
		return alertResult(AlertHandshakeFailure)
	}
	supported := false
	for _, cs := range ch.CipherSuites {
		if _, ok := tlsgram.CipherSuiteNames[cs]; ok {
			supported = true
			break
		}
	}
	if !supported {
		return alertResult(AlertHandshakeFailure)
	}
	sni, ok := ch.SNI()
	if !ok {
		// No SNI: serve the default certificate (first domain).
		if len(s.Domains) == 0 {
			return alertResult(AlertUnrecognizedName)
		}
		return helloResult(s.Domains[0])
	}
	host := sni
	if s.TolerantPadding {
		host = normalizeHost(host)
	}
	domain, matched := s.matchDomain(host)
	if !matched {
		return alertResult(AlertUnrecognizedName)
	}
	return helloResult(domain)
}

func helloResult(domain string) TLSResult {
	return TLSResult{
		OK:           true,
		ServedDomain: domain,
		Response:     []byte(serverHelloMagic + domain),
	}
}

func alertResult(alert string) TLSResult {
	return TLSResult{Alert: alert, Response: []byte(alertMagic + alert)}
}

// IsServerHello reports whether a raw reply is a successful handshake
// response, and for which domain.
func IsServerHello(raw []byte) (domain string, ok bool) {
	s := string(raw)
	if rest, found := strings.CutPrefix(s, serverHelloMagic); found {
		return rest, true
	}
	return "", false
}

// IsAlert reports whether a raw reply is a TLS alert, and which one.
func IsAlert(raw []byte) (alert string, ok bool) {
	s := string(raw)
	if rest, found := strings.CutPrefix(s, alertMagic); found {
		return rest, true
	}
	return "", false
}
