// Package httpgram models HTTP/1.1 GET requests at the grammar level
// (Appendix B, Figure 7 of the paper): every token of the request line, the
// Host header word, the hostname, and the delimiters are independently
// settable so that CenFuzz can render deliberately malformed requests, and
// so that middleboxes and endpoints can parse them with configurable
// strictness.
package httpgram

import (
	"fmt"
	"strings"
)

// Canonical grammar tokens for a well-formed request.
const (
	DefaultMethod    = "GET"
	DefaultPath      = "/"
	DefaultVersion   = "HTTP/1.1"
	DefaultHostWord  = "Host:"
	DefaultDelimiter = "\r\n"
)

// Header is one additional header line rendered verbatim as Name + ": " +
// Value (the canonical form); Raw overrides the rendering entirely when set,
// allowing malformed header lines.
type Header struct {
	Name  string
	Value string
	Raw   string
}

// render returns the header line without the trailing delimiter.
func (h Header) render() string {
	if h.Raw != "" {
		return h.Raw
	}
	return h.Name + ": " + h.Value
}

// Request is a grammar-level HTTP request. The zero value is not useful;
// construct with NewRequest and mutate the fields a fuzzing strategy targets.
type Request struct {
	Method    string // request method word, e.g. "GET", "PATCH", "GeT", "GE", ""
	Path      string // request target, e.g. "/", "?", "z"
	Version   string // protocol version word, e.g. "HTTP/1.1", "XXXX/1.1", "HTTP/ 1.1"
	HostWord  string // the Host header field word including colon, e.g. "Host:", "HostHeader:", "ost:"
	Hostname  string // the value of the Host header, the censorship trigger
	Delimiter string // line delimiter, canonically "\r\n"; Remove strategies use "\r" or "\n"
	Headers   []Header
	// OmitHostLine drops the Host header line entirely (one of the
	// Hostname Alternate fuzzing permutations).
	OmitHostLine bool
}

// NewRequest returns a canonical GET request for hostname.
func NewRequest(hostname string) *Request {
	return &Request{
		Method:    DefaultMethod,
		Path:      DefaultPath,
		Version:   DefaultVersion,
		HostWord:  DefaultHostWord,
		Hostname:  hostname,
		Delimiter: DefaultDelimiter,
	}
}

// Clone returns a deep copy of the request.
func (r *Request) Clone() *Request {
	c := *r
	c.Headers = append([]Header(nil), r.Headers...)
	return &c
}

// Render produces the raw request bytes sent on the wire:
//
//	<Method> <Path> <Version><Delim><HostWord> <Hostname><Delim>[headers...]<Delim>
func (r *Request) Render() []byte {
	var b strings.Builder
	b.WriteString(r.Method)
	b.WriteString(" ")
	b.WriteString(r.Path)
	b.WriteString(" ")
	b.WriteString(r.Version)
	b.WriteString(r.Delimiter)
	if !r.OmitHostLine {
		b.WriteString(r.HostWord)
		b.WriteString(" ")
		b.WriteString(r.Hostname)
		b.WriteString(r.Delimiter)
	}
	for _, h := range r.Headers {
		b.WriteString(h.render())
		b.WriteString(r.Delimiter)
	}
	b.WriteString(r.Delimiter)
	return []byte(b.String())
}

// String implements fmt.Stringer with escaped delimiters for logging.
func (r *Request) String() string {
	return fmt.Sprintf("%q", r.Render())
}

// Parsed is the result of parsing raw request bytes.
type Parsed struct {
	Method   string
	Path     string
	Version  string
	Host     string   // value of the recognized Host header, "" if absent
	HostWord string   // the field word that carried the host, e.g. "Host:"
	Headers  []Header // all header lines after the request line
	// Violations records grammar problems a strict server would reject.
	Violations []Violation
}

// Violation is a grammar problem detected while parsing.
type Violation string

// Grammar violations surfaced by Parse. Endpoint servers map these to HTTP
// error statuses (§6.3: "400 Bad Request, 403 Forbidden, 301 Moved
// Permanently and 505 HTTP Version Not Supported").
const (
	ViolationBadRequestLine  Violation = "bad-request-line"
	ViolationUnknownMethod   Violation = "unknown-method"
	ViolationBadVersion      Violation = "bad-version"
	ViolationMissingHost     Violation = "missing-host"
	ViolationBadDelimiter    Violation = "bad-delimiter"
	ViolationMalformedHeader Violation = "malformed-header"
)

// validMethods are the request methods a conforming origin server accepts.
var validMethods = map[string]bool{
	"GET": true, "HEAD": true, "POST": true, "PUT": true,
	"PATCH": true, "DELETE": true, "OPTIONS": true, "TRACE": true,
}

// ValidMethod reports whether m is a standard HTTP request method
// (case-sensitive, per RFC 7231).
func ValidMethod(m string) bool { return validMethods[m] }

// splitLines splits raw request bytes into lines, tolerating \r\n, \n, and
// bare \r delimiters. It reports whether every line used the canonical \r\n.
func splitLines(raw string) (lines []string, canonical bool) {
	canonical = true
	for len(raw) > 0 {
		iN := strings.IndexByte(raw, '\n')
		iR := strings.IndexByte(raw, '\r')
		switch {
		case iR >= 0 && iN == iR+1: // \r\n
			lines = append(lines, raw[:iR])
			raw = raw[iN+1:]
		case iN >= 0 && (iR < 0 || iN < iR): // bare \n
			lines = append(lines, raw[:iN])
			raw = raw[iN+1:]
			canonical = false
		case iR >= 0: // bare \r
			lines = append(lines, raw[:iR])
			raw = raw[iR+1:]
			canonical = false
		default:
			lines = append(lines, raw)
			raw = ""
			canonical = false
		}
	}
	return lines, canonical
}

// Parse parses raw request bytes leniently, recording violations rather
// than failing, so that both strict origin servers and sloppy middleboxes
// can be layered on top of one scan.
func Parse(raw []byte) *Parsed {
	p := &Parsed{}
	lines, canonical := splitLines(string(raw))
	if !canonical {
		p.Violations = append(p.Violations, ViolationBadDelimiter)
	}
	if len(lines) == 0 {
		p.Violations = append(p.Violations, ViolationBadRequestLine)
		return p
	}
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) == 3 {
		p.Method, p.Path, p.Version = parts[0], parts[1], parts[2]
	} else {
		p.Violations = append(p.Violations, ViolationBadRequestLine)
		if len(parts) > 0 {
			p.Method = parts[0]
		}
	}
	if p.Method == "" || !ValidMethod(p.Method) {
		p.Violations = append(p.Violations, ViolationUnknownMethod)
	}
	if !strings.HasPrefix(p.Version, "HTTP/1.") {
		p.Violations = append(p.Violations, ViolationBadVersion)
	}
	for _, line := range lines[1:] {
		if line == "" {
			break // end of headers
		}
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			p.Violations = append(p.Violations, ViolationMalformedHeader)
			p.Headers = append(p.Headers, Header{Raw: line})
			continue
		}
		name := line[:colon]
		value := strings.TrimSpace(line[colon+1:])
		p.Headers = append(p.Headers, Header{Name: name, Value: value})
		if strings.EqualFold(name, "Host") && p.Host == "" {
			p.Host = value
			p.HostWord = name + ":"
		}
	}
	if p.Host == "" {
		p.Violations = append(p.Violations, ViolationMissingHost)
	}
	return p
}

// HasViolation reports whether v was recorded.
func (p *Parsed) HasViolation(v Violation) bool {
	for _, got := range p.Violations {
		if got == v {
			return true
		}
	}
	return false
}

// HostScanMode selects how a middlebox extracts the hostname it matches
// rules against. Real devices differ here, and the differences are exactly
// what several CenFuzz strategies exploit (§6.3).
type HostScanMode int

// Host scanning modes, ordered roughly from strictest to loosest.
const (
	// ScanExactHostWord only honors a header whose field word is exactly
	// "Host:" (case-sensitive) followed by a space.
	ScanExactHostWord HostScanMode = iota
	// ScanCaseInsensitiveHostWord honors any capitalization of "host:".
	ScanCaseInsensitiveHostWord
	// ScanSubstring searches for "Host:" case-insensitively anywhere in the
	// raw bytes and takes the rest of the line — tolerant of broken
	// delimiters and malformed request lines.
	ScanSubstring
)

// ScanOptions configures ExtractHost.
type ScanOptions struct {
	Mode HostScanMode
	// MethodAllowlist, when non-empty, restricts scanning to requests whose
	// method word is in the list (compared case-insensitively — real
	// devices fold case, which is why Capitalize strategies rarely evade,
	// §6.3); otherwise the scan reports no host. This reproduces devices
	// that "trigger only on certain HTTP methods".
	MethodAllowlist []string
	// RequireParseableRequestLine makes the scan fail when the request line
	// does not have three space-separated parts.
	RequireParseableRequestLine bool
	// RequireCanonicalDelimiters makes the scan fail on requests not using
	// \r\n line endings.
	RequireCanonicalDelimiters bool
}

// ExtractHost scans raw request bytes the way a censorship device would and
// returns the hostname the device keys its rules on. ok is false when the
// device's parser fails to find a hostname at all — which means the request
// evades a hostname-based rule.
func ExtractHost(raw []byte, opts ScanOptions) (host string, ok bool) {
	s := string(raw)
	lines, canonical := splitLines(s)
	if opts.RequireCanonicalDelimiters && !canonical {
		return "", false
	}
	if len(lines) == 0 {
		return "", false
	}
	parts := strings.SplitN(lines[0], " ", 3)
	if opts.RequireParseableRequestLine && len(strings.Split(lines[0], " ")) != 3 {
		return "", false
	}
	if len(opts.MethodAllowlist) > 0 {
		method := parts[0]
		allowed := false
		for _, m := range opts.MethodAllowlist {
			if strings.EqualFold(method, m) {
				allowed = true
				break
			}
		}
		if !allowed {
			return "", false
		}
	}
	switch opts.Mode {
	case ScanExactHostWord:
		for _, line := range lines[1:] {
			if rest, found := strings.CutPrefix(line, "Host: "); found {
				return strings.TrimSpace(rest), true
			}
		}
	case ScanCaseInsensitiveHostWord:
		for _, line := range lines[1:] {
			if len(line) >= 5 && strings.EqualFold(line[:5], "Host:") {
				return strings.TrimSpace(line[5:]), true
			}
		}
	case ScanSubstring:
		// ASCII-only lowering: strings.ToLower can change the byte length
		// on invalid UTF-8, which would desynchronize the index below.
		lower := asciiLower(s)
		idx := strings.Index(lower, "host:")
		if idx >= 0 {
			rest := s[idx+5:]
			if end := strings.IndexAny(rest, "\r\n"); end >= 0 {
				rest = rest[:end]
			}
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// asciiLower lowercases ASCII letters byte-wise, preserving length.
func asciiLower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c - 'A' + 'a'
		}
	}
	return string(b)
}

// ParseStatus extracts the status code from a raw HTTP/1.x response,
// returning 0 when the bytes are not a parseable status line.
func ParseStatus(raw []byte) int {
	s := string(raw)
	if !strings.HasPrefix(s, "HTTP/1.") || len(s) < 12 {
		return 0
	}
	code := 0
	for i := 9; i < 12; i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0
		}
		code = code*10 + int(c-'0')
	}
	return code
}
