// Package httpgram models HTTP/1.1 GET requests at the grammar level
// (Appendix B, Figure 7 of the paper): every token of the request line, the
// Host header word, the hostname, and the delimiters are independently
// settable so that CenFuzz can render deliberately malformed requests, and
// so that middleboxes and endpoints can parse them with configurable
// strictness.
package httpgram

import (
	"bytes"
	"fmt"
	"strings"
)

// Canonical grammar tokens for a well-formed request.
const (
	DefaultMethod    = "GET"
	DefaultPath      = "/"
	DefaultVersion   = "HTTP/1.1"
	DefaultHostWord  = "Host:"
	DefaultDelimiter = "\r\n"
)

// Header is one additional header line rendered verbatim as Name + ": " +
// Value (the canonical form); Raw overrides the rendering entirely when set,
// allowing malformed header lines.
type Header struct {
	Name  string
	Value string
	Raw   string
}

// render returns the header line without the trailing delimiter.
func (h Header) render() string {
	if h.Raw != "" {
		return h.Raw
	}
	return h.Name + ": " + h.Value
}

// Request is a grammar-level HTTP request. The zero value is not useful;
// construct with NewRequest and mutate the fields a fuzzing strategy targets.
type Request struct {
	Method    string // request method word, e.g. "GET", "PATCH", "GeT", "GE", ""
	Path      string // request target, e.g. "/", "?", "z"
	Version   string // protocol version word, e.g. "HTTP/1.1", "XXXX/1.1", "HTTP/ 1.1"
	HostWord  string // the Host header field word including colon, e.g. "Host:", "HostHeader:", "ost:"
	Hostname  string // the value of the Host header, the censorship trigger
	Delimiter string // line delimiter, canonically "\r\n"; Remove strategies use "\r" or "\n"
	Headers   []Header
	// OmitHostLine drops the Host header line entirely (one of the
	// Hostname Alternate fuzzing permutations).
	OmitHostLine bool
}

// NewRequest returns a canonical GET request for hostname.
func NewRequest(hostname string) *Request {
	return &Request{
		Method:    DefaultMethod,
		Path:      DefaultPath,
		Version:   DefaultVersion,
		HostWord:  DefaultHostWord,
		Hostname:  hostname,
		Delimiter: DefaultDelimiter,
	}
}

// Clone returns a deep copy of the request.
func (r *Request) Clone() *Request {
	c := *r
	c.Headers = append([]Header(nil), r.Headers...)
	return &c
}

// Render produces the raw request bytes sent on the wire:
//
//	<Method> <Path> <Version><Delim><HostWord> <Hostname><Delim>[headers...]<Delim>
func (r *Request) Render() []byte {
	var b strings.Builder
	b.WriteString(r.Method)
	b.WriteString(" ")
	b.WriteString(r.Path)
	b.WriteString(" ")
	b.WriteString(r.Version)
	b.WriteString(r.Delimiter)
	if !r.OmitHostLine {
		b.WriteString(r.HostWord)
		b.WriteString(" ")
		b.WriteString(r.Hostname)
		b.WriteString(r.Delimiter)
	}
	for _, h := range r.Headers {
		b.WriteString(h.render())
		b.WriteString(r.Delimiter)
	}
	b.WriteString(r.Delimiter)
	return []byte(b.String())
}

// String implements fmt.Stringer with escaped delimiters for logging.
func (r *Request) String() string {
	return fmt.Sprintf("%q", r.Render())
}

// Parsed is the result of parsing raw request bytes.
type Parsed struct {
	Method   string
	Path     string
	Version  string
	Host     string   // value of the recognized Host header, "" if absent
	HostWord string   // the field word that carried the host, e.g. "Host:"
	Headers  []Header // all header lines after the request line
	// Violations records grammar problems a strict server would reject.
	Violations []Violation
}

// Violation is a grammar problem detected while parsing.
type Violation string

// Grammar violations surfaced by Parse. Endpoint servers map these to HTTP
// error statuses (§6.3: "400 Bad Request, 403 Forbidden, 301 Moved
// Permanently and 505 HTTP Version Not Supported").
const (
	ViolationBadRequestLine  Violation = "bad-request-line"
	ViolationUnknownMethod   Violation = "unknown-method"
	ViolationBadVersion      Violation = "bad-version"
	ViolationMissingHost     Violation = "missing-host"
	ViolationBadDelimiter    Violation = "bad-delimiter"
	ViolationMalformedHeader Violation = "malformed-header"
)

// validMethods are the request methods a conforming origin server accepts.
var validMethods = map[string]bool{
	"GET": true, "HEAD": true, "POST": true, "PUT": true,
	"PATCH": true, "DELETE": true, "OPTIONS": true, "TRACE": true,
}

// ValidMethod reports whether m is a standard HTTP request method
// (case-sensitive, per RFC 7231).
func ValidMethod(m string) bool { return validMethods[m] }

// splitLines splits raw request bytes into lines, tolerating \r\n, \n, and
// bare \r delimiters. It reports whether every line used the canonical \r\n.
func splitLines(raw string) (lines []string, canonical bool) {
	canonical = true
	for len(raw) > 0 {
		iN := strings.IndexByte(raw, '\n')
		iR := strings.IndexByte(raw, '\r')
		switch {
		case iR >= 0 && iN == iR+1: // \r\n
			lines = append(lines, raw[:iR])
			raw = raw[iN+1:]
		case iN >= 0 && (iR < 0 || iN < iR): // bare \n
			lines = append(lines, raw[:iN])
			raw = raw[iN+1:]
			canonical = false
		case iR >= 0: // bare \r
			lines = append(lines, raw[:iR])
			raw = raw[iR+1:]
			canonical = false
		default:
			lines = append(lines, raw)
			raw = ""
			canonical = false
		}
	}
	return lines, canonical
}

// Parse parses raw request bytes leniently, recording violations rather
// than failing, so that both strict origin servers and sloppy middleboxes
// can be layered on top of one scan.
func Parse(raw []byte) *Parsed {
	p := &Parsed{}
	lines, canonical := splitLines(string(raw))
	if !canonical {
		p.Violations = append(p.Violations, ViolationBadDelimiter)
	}
	if len(lines) == 0 {
		p.Violations = append(p.Violations, ViolationBadRequestLine)
		return p
	}
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) == 3 {
		p.Method, p.Path, p.Version = parts[0], parts[1], parts[2]
	} else {
		p.Violations = append(p.Violations, ViolationBadRequestLine)
		if len(parts) > 0 {
			p.Method = parts[0]
		}
	}
	if p.Method == "" || !ValidMethod(p.Method) {
		p.Violations = append(p.Violations, ViolationUnknownMethod)
	}
	if !strings.HasPrefix(p.Version, "HTTP/1.") {
		p.Violations = append(p.Violations, ViolationBadVersion)
	}
	for _, line := range lines[1:] {
		if line == "" {
			break // end of headers
		}
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			p.Violations = append(p.Violations, ViolationMalformedHeader)
			p.Headers = append(p.Headers, Header{Raw: line})
			continue
		}
		name := line[:colon]
		value := strings.TrimSpace(line[colon+1:])
		p.Headers = append(p.Headers, Header{Name: name, Value: value})
		if strings.EqualFold(name, "Host") && p.Host == "" {
			p.Host = value
			p.HostWord = name + ":"
		}
	}
	if p.Host == "" {
		p.Violations = append(p.Violations, ViolationMissingHost)
	}
	return p
}

// HasViolation reports whether v was recorded.
func (p *Parsed) HasViolation(v Violation) bool {
	for _, got := range p.Violations {
		if got == v {
			return true
		}
	}
	return false
}

// HostScanMode selects how a middlebox extracts the hostname it matches
// rules against. Real devices differ here, and the differences are exactly
// what several CenFuzz strategies exploit (§6.3).
type HostScanMode int

// Host scanning modes, ordered roughly from strictest to loosest.
const (
	// ScanExactHostWord only honors a header whose field word is exactly
	// "Host:" (case-sensitive) followed by a space.
	ScanExactHostWord HostScanMode = iota
	// ScanCaseInsensitiveHostWord honors any capitalization of "host:".
	ScanCaseInsensitiveHostWord
	// ScanSubstring searches for "Host:" case-insensitively anywhere in the
	// raw bytes and takes the rest of the line — tolerant of broken
	// delimiters and malformed request lines.
	ScanSubstring
)

// ScanOptions configures ExtractHost.
type ScanOptions struct {
	Mode HostScanMode
	// MethodAllowlist, when non-empty, restricts scanning to requests whose
	// method word is in the list (compared case-insensitively — real
	// devices fold case, which is why Capitalize strategies rarely evade,
	// §6.3); otherwise the scan reports no host. This reproduces devices
	// that "trigger only on certain HTTP methods".
	MethodAllowlist []string
	// RequireParseableRequestLine makes the scan fail when the request line
	// does not have three space-separated parts.
	RequireParseableRequestLine bool
	// RequireCanonicalDelimiters makes the scan fail on requests not using
	// \r\n line endings.
	RequireCanonicalDelimiters bool
}

// cutLine splits off the first line of raw, mirroring one iteration of
// splitLines: \r\n is canonical, bare \n and bare \r are tolerated but
// non-canonical, and an unterminated final line is non-canonical. raw must
// be non-empty. The returned slices alias raw; nothing is allocated.
func cutLine(raw []byte) (line, rest []byte, canonical bool) {
	iN := bytes.IndexByte(raw, '\n')
	iR := bytes.IndexByte(raw, '\r')
	switch {
	case iR >= 0 && iN == iR+1: // \r\n
		return raw[:iR], raw[iN+1:], true
	case iN >= 0 && (iR < 0 || iN < iR): // bare \n
		return raw[:iN], raw[iN+1:], false
	case iR >= 0: // bare \r
		return raw[:iR], raw[iR+1:], false
	default: // unterminated final line
		return raw, nil, false
	}
}

// allCanonical reports whether every line of raw ends with \r\n — the
// whole-input property splitLines reports, computed without splitting.
func allCanonical(raw []byte) bool {
	for len(raw) > 0 {
		_, rest, canon := cutLine(raw)
		if !canon {
			return false
		}
		raw = rest
	}
	return true
}

// RequestLineFields returns the three space-separated tokens of the first
// line of raw without allocating. The returned slices alias raw. Mirroring
// Parse, path and version are nil unless the line has at least two spaces
// (the version token absorbs any further spaces).
func RequestLineFields(raw []byte) (method, path, version []byte) {
	if len(raw) == 0 {
		return nil, nil, nil
	}
	line, _, _ := cutLine(raw)
	sp1 := bytes.IndexByte(line, ' ')
	if sp1 < 0 {
		return line, nil, nil
	}
	method = line[:sp1]
	rest := line[sp1+1:]
	sp2 := bytes.IndexByte(rest, ' ')
	if sp2 < 0 {
		return method, nil, nil
	}
	return method, rest[:sp2], rest[sp2+1:]
}

var (
	hostPrefixExact = []byte("Host: ")
	spaceSep        = []byte(" ")
)

// ExtractHost scans raw request bytes the way a censorship device would and
// returns the hostname the device keys its rules on. ok is false when the
// device's parser fails to find a hostname at all — which means the request
// evades a hostname-based rule.
//
// The scan itself never allocates; only a successful extraction copies the
// hostname out of raw (so callers may reuse the payload buffer).
func ExtractHost(raw []byte, opts ScanOptions) (host string, ok bool) {
	if opts.RequireCanonicalDelimiters && !allCanonical(raw) {
		return "", false
	}
	if len(raw) == 0 {
		return "", false
	}
	line0, after, _ := cutLine(raw)
	// strings.Split(line0, " ") != 3 parts ⇔ the line does not contain
	// exactly two spaces.
	if opts.RequireParseableRequestLine && bytes.Count(line0, spaceSep) != 2 {
		return "", false
	}
	if len(opts.MethodAllowlist) > 0 {
		method := line0
		if sp := bytes.IndexByte(line0, ' '); sp >= 0 {
			method = line0[:sp]
		}
		allowed := false
		for _, m := range opts.MethodAllowlist {
			if strings.EqualFold(string(method), m) {
				allowed = true
				break
			}
		}
		if !allowed {
			return "", false
		}
	}
	switch opts.Mode {
	case ScanExactHostWord:
		for len(after) > 0 {
			var line []byte
			line, after, _ = cutLine(after)
			if rest, found := bytes.CutPrefix(line, hostPrefixExact); found {
				return string(bytes.TrimSpace(rest)), true
			}
		}
	case ScanCaseInsensitiveHostWord:
		for len(after) > 0 {
			var line []byte
			line, after, _ = cutLine(after)
			if len(line) >= 5 && strings.EqualFold(string(line[:5]), "Host:") {
				return string(bytes.TrimSpace(line[5:])), true
			}
		}
	case ScanSubstring:
		// ASCII-case-insensitive search for "host:" anywhere in the raw
		// bytes, including the request line. Byte-wise lowering (only
		// 'A'-'Z') keeps indices aligned on invalid UTF-8, exactly like
		// lowering a copy of the input and searching that.
		for i := 0; i+5 <= len(raw); i++ {
			if raw[i]|0x20 == 'h' && raw[i+1]|0x20 == 'o' && raw[i+2]|0x20 == 's' &&
				raw[i+3]|0x20 == 't' && raw[i+4] == ':' {
				rest := raw[i+5:]
				if end := bytes.IndexAny(rest, "\r\n"); end >= 0 {
					rest = rest[:end]
				}
				return string(bytes.TrimSpace(rest)), true
			}
		}
	}
	return "", false
}

// ParseStatus extracts the status code from a raw HTTP/1.x response,
// returning 0 when the bytes are not a parseable status line.
func ParseStatus(raw []byte) int {
	s := string(raw)
	if !strings.HasPrefix(s, "HTTP/1.") || len(s) < 12 {
		return 0
	}
	code := 0
	for i := 9; i < 12; i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0
		}
		code = code*10 + int(c-'0')
	}
	return code
}
