package httpgram

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestRenderCanonical(t *testing.T) {
	r := NewRequest("www.example.com")
	got := string(r.Render())
	want := "GET / HTTP/1.1\r\nHost: www.example.com\r\n\r\n"
	if got != want {
		t.Errorf("Render() = %q, want %q", got, want)
	}
}

func TestRenderWithHeaders(t *testing.T) {
	r := NewRequest("example.com")
	r.Headers = []Header{
		{Name: "Connection", Value: "keep-alive"},
		{Raw: "X-Broken-NoColon"},
	}
	got := string(r.Render())
	if !strings.Contains(got, "Connection: keep-alive\r\n") {
		t.Errorf("missing canonical header in %q", got)
	}
	if !strings.Contains(got, "X-Broken-NoColon\r\n") {
		t.Errorf("missing raw header in %q", got)
	}
	if !strings.HasSuffix(got, "\r\n\r\n") {
		t.Errorf("missing final delimiter in %q", got)
	}
}

func TestRenderMutatedTokens(t *testing.T) {
	r := NewRequest("example.com")
	r.Method = "GeT"
	r.Path = "?"
	r.Version = "XXXX/1.1"
	r.HostWord = "HostHeader:"
	r.Delimiter = "\n"
	got := string(r.Render())
	want := "GeT ? XXXX/1.1\nHostHeader: example.com\n\n"
	if got != want {
		t.Errorf("Render() = %q, want %q", got, want)
	}
}

func TestParseCanonical(t *testing.T) {
	p := Parse(NewRequest("www.example.com").Render())
	if p.Method != "GET" || p.Path != "/" || p.Version != "HTTP/1.1" {
		t.Errorf("request line parse: %+v", p)
	}
	if p.Host != "www.example.com" {
		t.Errorf("Host = %q", p.Host)
	}
	if len(p.Violations) != 0 {
		t.Errorf("unexpected violations: %v", p.Violations)
	}
}

func TestParseViolations(t *testing.T) {
	cases := []struct {
		name string
		req  func() *Request
		want Violation
	}{
		{"unknown method", func() *Request { r := NewRequest("x.com"); r.Method = "XXXX"; return r }, ViolationUnknownMethod},
		{"truncated method", func() *Request { r := NewRequest("x.com"); r.Method = "GE"; return r }, ViolationUnknownMethod},
		{"case-mangled method", func() *Request { r := NewRequest("x.com"); r.Method = "GeT"; return r }, ViolationUnknownMethod},
		{"bad version", func() *Request { r := NewRequest("x.com"); r.Version = "HTTP/9"; return r }, ViolationBadVersion},
		{"spaced version", func() *Request { r := NewRequest("x.com"); r.Version = "HTTP/ 1.1"; return r }, ViolationBadVersion},
		{"mangled host word", func() *Request { r := NewRequest("x.com"); r.HostWord = "ost:"; return r }, ViolationMissingHost},
		{"bare lf delimiter", func() *Request { r := NewRequest("x.com"); r.Delimiter = "\n"; return r }, ViolationBadDelimiter},
		{"bare cr delimiter", func() *Request { r := NewRequest("x.com"); r.Delimiter = "\r"; return r }, ViolationBadDelimiter},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Parse(tc.req().Render())
			if !p.HasViolation(tc.want) {
				t.Errorf("violations = %v, want %v", p.Violations, tc.want)
			}
		})
	}
}

func TestParseCaseInsensitiveHostHeader(t *testing.T) {
	r := NewRequest("x.com")
	r.HostWord = "hOSt:"
	p := Parse(r.Render())
	if p.Host != "x.com" {
		t.Errorf("Host = %q, want x.com (origin servers match field names case-insensitively)", p.Host)
	}
}

func TestParseSpacedVersionStillFindsHost(t *testing.T) {
	r := NewRequest("x.com")
	r.Version = "HTTP/ 1.1" // request line now has 4 space-separated parts
	p := Parse(r.Render())
	if p.Host != "x.com" {
		t.Errorf("Host = %q, want x.com", p.Host)
	}
}

func TestValidMethod(t *testing.T) {
	for _, m := range []string{"GET", "POST", "PUT", "PATCH", "DELETE", "HEAD", "OPTIONS", "TRACE"} {
		if !ValidMethod(m) {
			t.Errorf("ValidMethod(%q) = false", m)
		}
	}
	for _, m := range []string{"", "GE", "GeT", "XXXX", "get"} {
		if ValidMethod(m) {
			t.Errorf("ValidMethod(%q) = true", m)
		}
	}
}

func TestExtractHostExactWord(t *testing.T) {
	opts := ScanOptions{Mode: ScanExactHostWord}
	r := NewRequest("blocked.example")
	if h, ok := ExtractHost(r.Render(), opts); !ok || h != "blocked.example" {
		t.Errorf("canonical request: host=%q ok=%v", h, ok)
	}
	// Mangled host word evades an exact-word scanner.
	r.HostWord = "HoST:"
	if _, ok := ExtractHost(r.Render(), opts); ok {
		t.Error("mangled host word should evade ScanExactHostWord")
	}
	// Removed-prefix host word evades too.
	r.HostWord = "ost:"
	if _, ok := ExtractHost(r.Render(), opts); ok {
		t.Error("truncated host word should evade ScanExactHostWord")
	}
}

func TestExtractHostCaseInsensitive(t *testing.T) {
	opts := ScanOptions{Mode: ScanCaseInsensitiveHostWord}
	r := NewRequest("blocked.example")
	r.HostWord = "hOST:"
	if h, ok := ExtractHost(r.Render(), opts); !ok || h != "blocked.example" {
		t.Errorf("case-mangled host word: host=%q ok=%v", h, ok)
	}
	r.HostWord = "ost:"
	if _, ok := ExtractHost(r.Render(), opts); ok {
		t.Error("truncated host word should evade case-insensitive scanner")
	}
}

func TestExtractHostSubstring(t *testing.T) {
	opts := ScanOptions{Mode: ScanSubstring}
	r := NewRequest("blocked.example")
	r.Delimiter = "\n" // broken delimiters don't stop a substring scanner
	if h, ok := ExtractHost(r.Render(), opts); !ok || h != "blocked.example" {
		t.Errorf("substring scan: host=%q ok=%v", h, ok)
	}
	r2 := NewRequest("blocked.example")
	r2.HostWord = "ost:" // but a truncated word still evades it
	if _, ok := ExtractHost(r2.Render(), opts); ok {
		t.Error("truncated host word should evade substring scanner")
	}
}

func TestExtractHostMethodAllowlist(t *testing.T) {
	opts := ScanOptions{
		Mode:            ScanCaseInsensitiveHostWord,
		MethodAllowlist: []string{"GET", "POST"},
	}
	r := NewRequest("blocked.example")
	if _, ok := ExtractHost(r.Render(), opts); !ok {
		t.Error("GET should be scanned")
	}
	r.Method = "PATCH"
	if _, ok := ExtractHost(r.Render(), opts); ok {
		t.Error("PATCH should evade a GET/POST-only device")
	}
	r.Method = ""
	if _, ok := ExtractHost(r.Render(), opts); ok {
		t.Error("empty method should evade a GET/POST-only device")
	}
}

func TestExtractHostStrictRequestLine(t *testing.T) {
	opts := ScanOptions{Mode: ScanCaseInsensitiveHostWord, RequireParseableRequestLine: true}
	r := NewRequest("blocked.example")
	r.Version = "HTTP/ 1.1" // four parts now
	if _, ok := ExtractHost(r.Render(), opts); ok {
		t.Error("spaced version should evade a strict-request-line device")
	}
}

func TestExtractHostStrictDelimiters(t *testing.T) {
	opts := ScanOptions{Mode: ScanCaseInsensitiveHostWord, RequireCanonicalDelimiters: true}
	r := NewRequest("blocked.example")
	r.Delimiter = "\n"
	if _, ok := ExtractHost(r.Render(), opts); ok {
		t.Error("bare-LF delimiters should evade a strict-delimiter device")
	}
	r.Delimiter = "\r\n"
	if _, ok := ExtractHost(r.Render(), opts); !ok {
		t.Error("canonical request should not evade")
	}
}

func TestCloneIndependence(t *testing.T) {
	r := NewRequest("a.com")
	r.Headers = []Header{{Name: "X", Value: "1"}}
	c := r.Clone()
	c.Hostname = "b.com"
	c.Headers[0].Value = "2"
	if r.Hostname != "a.com" || r.Headers[0].Value != "1" {
		t.Error("Clone shares state with original")
	}
}

func TestQuickRenderParseHostRoundTrip(t *testing.T) {
	// For any hostname made of reasonable label characters, rendering a
	// canonical request and parsing it recovers the hostname.
	f := func(raw []byte) bool {
		host := sanitizeHost(raw)
		if host == "" {
			return true
		}
		p := Parse(NewRequest(host).Render())
		return p.Host == host
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// sanitizeHost maps arbitrary bytes to hostname-safe characters.
func sanitizeHost(raw []byte) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789-."
	var b bytes.Buffer
	for _, c := range raw {
		b.WriteByte(alphabet[int(c)%len(alphabet)])
	}
	return strings.Trim(b.String(), ".-")
}

func TestSplitLinesMixed(t *testing.T) {
	lines, canonical := splitLines("a\r\nb\nc\rd")
	want := []string{"a", "b", "c", "d"}
	if canonical {
		t.Error("mixed delimiters reported canonical")
	}
	if len(lines) != len(want) {
		t.Fatalf("lines = %v", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("lines[%d] = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestParseStatus(t *testing.T) {
	cases := map[string]int{
		"HTTP/1.1 200 OK\r\n\r\nbody":   200,
		"HTTP/1.1 403 Forbidden\r\n":    403,
		"HTTP/1.0 505 HTTP Version\r\n": 505,
		"HTTP/1.1 xx OK":                0,
		"garbage":                       0,
		"":                              0,
		"HTTP/1.1 99":                   0, // too short for 3 digits
	}
	for raw, want := range cases {
		if got := ParseStatus([]byte(raw)); got != want {
			t.Errorf("ParseStatus(%q) = %d, want %d", raw, got, want)
		}
	}
}
