package httpgram

import "testing"

// FuzzParse ensures the lenient request parser and the middlebox-style
// host scanners never panic on arbitrary bytes.
func FuzzParse(f *testing.F) {
	f.Add([]byte("GET / HTTP/1.1\r\nHost: www.example.com\r\n\r\n"))
	f.Add([]byte("GE / HTP\nost: x\n"))
	f.Add([]byte(""))
	f.Add([]byte("\r\r\r\n\n\n"))
	f.Add([]byte("host:"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p := Parse(data)
		_ = p.HasViolation(ViolationBadVersion)
		for _, mode := range []HostScanMode{ScanExactHostWord, ScanCaseInsensitiveHostWord, ScanSubstring} {
			ExtractHost(data, ScanOptions{Mode: mode})
			ExtractHost(data, ScanOptions{
				Mode:                        mode,
				MethodAllowlist:             []string{"GET"},
				RequireParseableRequestLine: true,
				RequireCanonicalDelimiters:  true,
			})
		}
	})
}
