package netem

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

var (
	addrA = netip.MustParseAddr("10.0.0.1")
	addrB = netip.MustParseAddr("192.0.2.7")
)

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4{
		TOS: 0x20, ID: 4242, Flags: IPFlagDF, TTL: 13,
		Protocol: ProtoTCP, Src: addrA, Dst: addrB,
	}
	wire := h.SerializeTo(nil, 100)
	if len(wire) != IPv4HeaderLen {
		t.Fatalf("header length = %d, want %d", len(wire), IPv4HeaderLen)
	}
	var got IPv4
	n, err := got.DecodeFromBytes(wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != IPv4HeaderLen {
		t.Errorf("consumed %d bytes, want %d", n, IPv4HeaderLen)
	}
	if got != h {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
	if got.TotalLength != IPv4HeaderLen+100 {
		t.Errorf("TotalLength = %d, want %d", got.TotalLength, IPv4HeaderLen+100)
	}
}

func TestIPv4ChecksumValid(t *testing.T) {
	h := IPv4{TTL: 64, Protocol: ProtoTCP, Src: addrA, Dst: addrB}
	wire := h.SerializeTo(nil, 0)
	// Sum over the header including the checksum field must be zero
	// (all-ones complement).
	var sum uint32
	for i := 0; i < len(wire); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(wire[i:]))
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	if uint16(sum) != 0xffff {
		t.Errorf("header checksum does not verify: folded sum = %#x", sum)
	}
}

func TestIPv4DecodeErrors(t *testing.T) {
	var h IPv4
	if _, err := h.DecodeFromBytes(make([]byte, 10)); err == nil {
		t.Error("short buffer: want error")
	}
	bad := make([]byte, IPv4HeaderLen)
	bad[0] = 6 << 4 // IPv6 version nibble
	if _, err := h.DecodeFromBytes(bad); err == nil {
		t.Error("bad version: want error")
	}
	badIHL := make([]byte, IPv4HeaderLen)
	badIHL[0] = 4<<4 | 3 // IHL below minimum
	if _, err := h.DecodeFromBytes(badIHL); err == nil {
		t.Error("bad IHL: want error")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	tcp := TCP{
		SrcPort: 43210, DstPort: 443,
		Seq: 0xdeadbeef, Ack: 0x01020304,
		Flags: TCPSyn | TCPAck, Window: 29200, Urgent: 0,
		Options: []TCPOption{
			{Kind: TCPOptMSS, Data: []byte{0x05, 0xb4}},
			{Kind: TCPOptNop},
			{Kind: TCPOptWScale, Data: []byte{7}},
		},
	}
	payload := []byte("GET / HTTP/1.1\r\n\r\n")
	wire := tcp.SerializeTo(nil, addrA.As4(), addrB.As4(), payload)
	var got TCP
	hl, err := got.DecodeFromBytes(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire[hl:], payload) {
		t.Errorf("payload after header = %q, want %q", wire[hl:], payload)
	}
	if got.SrcPort != tcp.SrcPort || got.DstPort != tcp.DstPort ||
		got.Seq != tcp.Seq || got.Ack != tcp.Ack ||
		got.Flags != tcp.Flags || got.Window != tcp.Window {
		t.Errorf("fixed fields mismatch: got %+v want %+v", got, tcp)
	}
	if !reflect.DeepEqual(got.Options, tcp.Options) {
		t.Errorf("options mismatch: got %v want %v", got.Options, tcp.Options)
	}
}

func TestTCPChecksumVerifies(t *testing.T) {
	tcp := TCP{SrcPort: 1000, DstPort: 80, Flags: TCPPsh | TCPAck}
	payload := []byte("hello")
	wire := tcp.SerializeTo(nil, addrA.As4(), addrB.As4(), payload)
	init := pseudoHeaderSum(addrA.As4(), addrB.As4(), uint8(ProtoTCP), len(wire))
	if got := checksumWithInitial(init, wire); got != 0 {
		t.Errorf("checksum over serialized segment = %#x, want 0", got)
	}
}

func TestTCPOptionKindsOrder(t *testing.T) {
	tcp := TCP{Options: []TCPOption{
		{Kind: TCPOptMSS, Data: []byte{1, 2}},
		{Kind: TCPOptSACKPerm},
		{Kind: TCPOptTimestamp, Data: make([]byte, 8)},
	}}
	got := tcp.OptionKinds()
	want := []TCPOptionKind{TCPOptMSS, TCPOptSACKPerm, TCPOptTimestamp}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("OptionKinds = %v, want %v", got, want)
	}
}

func TestPacketRoundTripTCP(t *testing.T) {
	p := NewTCPPacket(addrA, addrB, 55555, 80, TCPPsh|TCPAck, 1, 1, []byte("payload-bytes"))
	p.IP.TOS = 0x10
	p.IP.ID = 99
	wire, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePacket(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.IP.Src != p.IP.Src || got.IP.Dst != p.IP.Dst || got.IP.TOS != p.IP.TOS {
		t.Errorf("IP fields mismatch: got %+v", got.IP)
	}
	if got.TCP == nil || got.TCP.SrcPort != 55555 || got.TCP.DstPort != 80 {
		t.Fatalf("TCP layer mismatch: %+v", got.TCP)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Errorf("payload = %q, want %q", got.Payload, p.Payload)
	}
}

func TestPacketRoundTripICMP(t *testing.T) {
	orig := NewTCPPacket(addrA, addrB, 40000, 443, TCPSyn, 7, 0, nil)
	router := netip.MustParseAddr("172.16.0.1")
	te, err := NewTimeExceeded(router, orig, 8)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := te.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePacket(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.ICMP == nil || got.ICMP.Type != ICMPTimeExceeded {
		t.Fatalf("ICMP layer mismatch: %+v", got.ICMP)
	}
	q, err := got.ICMP.QuotedPacket()
	if err != nil {
		t.Fatal(err)
	}
	if q.IP.Src != addrA || q.IP.Dst != addrB {
		t.Errorf("quoted addresses = %s>%s, want %s>%s", q.IP.Src, q.IP.Dst, addrA, addrB)
	}
	src, dst, ok := q.QuotedPorts()
	if !ok || src != 40000 || dst != 443 {
		t.Errorf("quoted ports = %d>%d ok=%v", src, dst, ok)
	}
	seq, ok := q.QuotedSeq()
	if !ok || seq != 7 {
		t.Errorf("quoted seq = %d ok=%v, want 7", seq, ok)
	}
	if !q.FollowsRFC792Only() {
		t.Error("8-byte quote should register as RFC 792 minimum")
	}
}

func TestTimeExceededRFC1812FullQuote(t *testing.T) {
	payload := []byte("GET / HTTP/1.1\r\nHost: example.com\r\n\r\n")
	orig := NewTCPPacket(addrA, addrB, 40000, 80, TCPPsh|TCPAck, 100, 1, payload)
	te, err := NewTimeExceeded(netip.MustParseAddr("172.16.0.1"), orig, 4096)
	if err != nil {
		t.Fatal(err)
	}
	q, err := te.ICMP.QuotedPacket()
	if err != nil {
		t.Fatal(err)
	}
	if q.TCP == nil {
		t.Fatal("full quote should include a parseable TCP header")
	}
	if q.FollowsRFC792Only() {
		t.Error("full quote should not register as RFC 792 minimum")
	}
	if q.TCP.SrcPort != 40000 {
		t.Errorf("quoted TCP src port = %d, want 40000", q.TCP.SrcPort)
	}
}

func TestCompareQuoteDetectsTOSRewrite(t *testing.T) {
	sent := NewTCPPacket(addrA, addrB, 1234, 80, TCPPsh|TCPAck, 5, 5, []byte("x"))
	sent.IP.TOS = 0
	// The router saw a rewritten packet: a middlebox changed the TOS.
	seen := sent.Clone()
	seen.IP.TOS = 0x48
	te, err := NewTimeExceeded(netip.MustParseAddr("172.16.0.9"), seen, 8)
	if err != nil {
		t.Fatal(err)
	}
	q, err := te.ICMP.QuotedPacket()
	if err != nil {
		t.Fatal(err)
	}
	d := CompareQuote(sent, q)
	if !d.TOSChanged {
		t.Error("TOSChanged = false, want true")
	}
	if d.IPFlagsChanged || d.SeqChanged || d.PortsChanged {
		t.Errorf("unexpected deltas: %s", d.String())
	}
	if !d.Any() {
		t.Error("Any() = false, want true")
	}
	want := []string{"IPTOSChanged"}
	if !reflect.DeepEqual(d.ChangedFields(), want) {
		t.Errorf("ChangedFields = %v, want %v", d.ChangedFields(), want)
	}
}

func TestCompareQuoteNoDelta(t *testing.T) {
	sent := NewTCPPacket(addrA, addrB, 1234, 80, TCPPsh|TCPAck, 5, 5, []byte("abc"))
	te, err := NewTimeExceeded(netip.MustParseAddr("172.16.0.9"), sent, 4096)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := te.ICMP.QuotedPacket()
	d := CompareQuote(sent, q)
	if d.Any() {
		t.Errorf("unexpected deltas on clean path: %s", d.String())
	}
	if d.String() != "no-delta" {
		t.Errorf("String() = %q, want no-delta", d.String())
	}
}

func TestCompareQuotePayloadChange(t *testing.T) {
	sent := NewTCPPacket(addrA, addrB, 1234, 80, TCPPsh|TCPAck, 5, 5, []byte("GET /secret"))
	seen := sent.Clone()
	seen.Payload = []byte("GET /XXXXXX")
	te, _ := NewTimeExceeded(netip.MustParseAddr("172.16.0.9"), seen, 4096)
	q, _ := te.ICMP.QuotedPacket()
	d := CompareQuote(sent, q)
	if !d.PayloadChanged {
		t.Error("PayloadChanged = false, want true")
	}
}

func TestPacketClone(t *testing.T) {
	p := NewTCPPacket(addrA, addrB, 1, 2, TCPSyn, 3, 4, []byte("data"))
	p.TCP.Options = []TCPOption{{Kind: TCPOptMSS, Data: []byte{9, 9}}}
	c := p.Clone()
	c.Payload[0] = 'X'
	c.TCP.Options[0].Data[0] = 0
	c.IP.TTL = 1
	if p.Payload[0] != 'd' || p.TCP.Options[0].Data[0] != 9 || p.IP.TTL != 64 {
		t.Error("Clone shares storage with original")
	}
}

func TestSerializeNoTransport(t *testing.T) {
	p := &Packet{IP: IPv4{Src: addrA, Dst: addrB}}
	if _, err := p.Serialize(); err == nil {
		t.Error("want error for packet with no transport layer")
	}
}

func TestDecodePacketErrors(t *testing.T) {
	if _, err := DecodePacket([]byte{1, 2, 3}); err == nil {
		t.Error("short packet: want error")
	}
	h := IPv4{TTL: 4, Protocol: ProtoUDP, Src: addrA, Dst: addrB}
	wire := h.SerializeTo(nil, 0)
	if _, err := DecodePacket(wire); err == nil {
		t.Error("unsupported protocol: want error")
	}
}

// quickIPv4 builds an arbitrary-but-valid IPv4 header from fuzzer values.
func quickIPv4(tos uint8, id uint16, flags uint8, ttl uint8, srcRaw, dstRaw [4]byte) IPv4 {
	return IPv4{
		TOS: tos, ID: id, Flags: IPFlags(flags & 0x7), TTL: ttl,
		Protocol: ProtoTCP,
		Src:      netip.AddrFrom4(srcRaw), Dst: netip.AddrFrom4(dstRaw),
	}
}

func TestQuickIPv4RoundTrip(t *testing.T) {
	f := func(tos uint8, id uint16, flags, ttl uint8, src, dst [4]byte, payloadLen uint16) bool {
		h := quickIPv4(tos, id, flags, ttl, src, dst)
		wire := h.SerializeTo(nil, int(payloadLen%1400))
		var got IPv4
		if _, err := got.DecodeFromBytes(wire); err != nil {
			return false
		}
		return got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickTCPRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, win uint16, nPayload uint8) bool {
		tcp := TCP{
			SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack,
			Flags: TCPFlags(flags & 0x3f), Window: win,
		}
		payload := make([]byte, int(nPayload))
		rng.Read(payload)
		wire := tcp.SerializeTo(nil, [4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, payload)
		var got TCP
		hl, err := got.DecodeFromBytes(wire)
		if err != nil {
			return false
		}
		return got.SrcPort == sp && got.DstPort == dp && got.Seq == seq &&
			got.Ack == ack && got.Flags == TCPFlags(flags&0x3f) &&
			got.Window == win && bytes.Equal(wire[hl:], payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickPacketWireRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, seq uint32, nPayload uint8, tos uint8) bool {
		p := NewTCPPacket(addrA, addrB, sp, dp, TCPPsh|TCPAck, seq, 0, bytes.Repeat([]byte{0xAB}, int(nPayload)))
		p.IP.TOS = tos
		wire, err := p.Serialize()
		if err != nil {
			return false
		}
		got, err := DecodePacket(wire)
		if err != nil {
			return false
		}
		wire2, err := got.Serialize()
		if err != nil {
			return false
		}
		return bytes.Equal(wire, wire2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example-style check: checksum of a buffer plus its checksum
	// folds to zero.
	data := []byte{0x45, 0x00, 0x00, 0x3c, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06}
	c := Checksum(data)
	withSum := append(append([]byte(nil), data...), byte(c>>8), byte(c))
	if got := Checksum(withSum); got != 0 {
		t.Errorf("checksum over data+checksum = %#x, want 0", got)
	}
}

func TestProtocolString(t *testing.T) {
	cases := map[Protocol]string{ProtoTCP: "TCP", ProtoICMP: "ICMP", ProtoUDP: "UDP", Protocol(200): "Protocol(200)"}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", uint8(p), p.String(), want)
		}
	}
}

func TestFlagStrings(t *testing.T) {
	if s := (TCPSyn | TCPAck).String(); s != "SYN|ACK" {
		t.Errorf("TCP flags string = %q", s)
	}
	if s := TCPFlags(0).String(); s != "-" {
		t.Errorf("empty TCP flags string = %q", s)
	}
	if s := (IPFlagDF | IPFlagMF).String(); s != "DFMF" {
		t.Errorf("IP flags string = %q", s)
	}
	if s := IPFlags(0).String(); s != "-" {
		t.Errorf("empty IP flags string = %q", s)
	}
}
