package netem

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ICMPType identifies the type of an ICMP message.
type ICMPType uint8

// ICMP message types used by the simulator.
const (
	ICMPEchoReply      ICMPType = 0
	ICMPDestUnreach    ICMPType = 3
	ICMPEcho           ICMPType = 8
	ICMPTimeExceeded   ICMPType = 11
	ICMPParamProblem   ICMPType = 12
	icmpHeaderLenBytes          = 8
)

// String implements fmt.Stringer.
func (t ICMPType) String() string {
	switch t {
	case ICMPEchoReply:
		return "EchoReply"
	case ICMPDestUnreach:
		return "DestUnreachable"
	case ICMPEcho:
		return "Echo"
	case ICMPTimeExceeded:
		return "TimeExceeded"
	case ICMPParamProblem:
		return "ParameterProblem"
	default:
		return fmt.Sprintf("ICMPType(%d)", uint8(t))
	}
}

// ICMP is an ICMP message. For error messages (Time Exceeded, Destination
// Unreachable) Quoted carries the quoted bytes of the offending packet: the
// full IP header plus at least the first 64 bits of its payload (RFC 792),
// or as much as the router chose to include (RFC 1812 permits quoting the
// entire packet).
type ICMP struct {
	Type     ICMPType
	Code     uint8
	Checksum uint16 // filled by SerializeTo; kept on decode
	Rest     uint32 // unused/identifier field (bytes 4..8)
	Quoted   []byte
}

var errShortICMP = errors.New("netem: truncated ICMP message")

// SerializeTo appends the wire representation to b and returns the extended
// slice.
func (m *ICMP) SerializeTo(b []byte) []byte {
	start := len(b)
	b = append(b, make([]byte, icmpHeaderLenBytes)...)
	b = append(b, m.Quoted...)
	msg := b[start:]
	msg[0] = uint8(m.Type)
	msg[1] = m.Code
	binary.BigEndian.PutUint32(msg[4:], m.Rest)
	m.Checksum = Checksum(msg)
	binary.BigEndian.PutUint16(msg[2:], m.Checksum)
	return b
}

// DecodeFromBytes parses an ICMP message from data, consuming all of it.
// The quoted bytes are copied out of data.
func (m *ICMP) DecodeFromBytes(data []byte) error {
	return m.decodeFromBytes(data, false)
}

// decodeFromBytes parses the message. With alias set, Quoted aliases data
// (zero-copy); the caller must keep data immutable while the message is
// live.
func (m *ICMP) decodeFromBytes(data []byte, alias bool) error {
	if len(data) < icmpHeaderLenBytes {
		return errShortICMP
	}
	m.Type = ICMPType(data[0])
	m.Code = data[1]
	m.Checksum = binary.BigEndian.Uint16(data[2:])
	m.Rest = binary.BigEndian.Uint32(data[4:])
	quoted := data[icmpHeaderLenBytes:len(data):len(data)]
	if !alias {
		quoted = append([]byte(nil), quoted...)
	}
	m.Quoted = quoted
	return nil
}

// QuotedPacket decodes the quoted bytes of an ICMP error message into a
// partial packet: the quoted IPv4 header, the quoted transport prefix, and
// how many bytes of transport-layer data were quoted. Returns an error when
// no valid IPv4 header is quoted.
func (m *ICMP) QuotedPacket() (*QuotedPacket, error) {
	var ip IPv4
	n, err := ip.DecodeFromBytes(m.Quoted)
	if err != nil {
		return nil, fmt.Errorf("netem: decoding quoted packet: %w", err)
	}
	q := &QuotedPacket{IP: ip, TransportBytes: append([]byte(nil), m.Quoted[n:]...)}
	if ip.Protocol == ProtoTCP && len(q.TransportBytes) >= TCPHeaderLen {
		var tcp TCP
		if _, err := tcp.DecodeFromBytes(q.TransportBytes); err == nil {
			q.TCP = &tcp
		}
	}
	return q, nil
}

// String implements fmt.Stringer.
func (m *ICMP) String() string {
	return fmt.Sprintf("ICMP %s code=%d quoted=%dB", m.Type, m.Code, len(m.Quoted))
}

// QuotedPacket is the partially decoded offending packet carried in an ICMP
// error. TCP is non-nil only when enough bytes were quoted to parse a full
// TCP header (RFC 1812-style quoting); RFC 792 routers quote only 8 bytes of
// the transport header, enough for ports and sequence number.
type QuotedPacket struct {
	IP             IPv4
	TransportBytes []byte
	TCP            *TCP
}

// QuotedPorts extracts source and destination ports from the quoted
// transport bytes. Works for both RFC 792 (8-byte) and fuller quotes.
func (q *QuotedPacket) QuotedPorts() (src, dst uint16, ok bool) {
	if len(q.TransportBytes) < 4 {
		return 0, 0, false
	}
	return binary.BigEndian.Uint16(q.TransportBytes[0:]),
		binary.BigEndian.Uint16(q.TransportBytes[2:]), true
}

// QuotedSeq extracts the TCP sequence number from the quoted transport
// bytes when present.
func (q *QuotedPacket) QuotedSeq() (uint32, bool) {
	if len(q.TransportBytes) < 8 {
		return 0, false
	}
	return binary.BigEndian.Uint32(q.TransportBytes[4:]), true
}

// FollowsRFC792Only reports whether the quote contains exactly the minimum
// RFC 792 payload: 64 bits (8 bytes) of the original datagram's data.
func (q *QuotedPacket) FollowsRFC792Only() bool {
	return len(q.TransportBytes) == 8
}
