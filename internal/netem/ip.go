package netem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Protocol identifies the transport protocol carried by an IPv4 packet.
type Protocol uint8

// Transport protocol numbers (IANA).
const (
	ProtoICMP Protocol = 1
	ProtoTCP  Protocol = 6
	ProtoUDP  Protocol = 17
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case ProtoICMP:
		return "ICMP"
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	default:
		return fmt.Sprintf("Protocol(%d)", uint8(p))
	}
}

// IPFlags holds the three-bit flag field of an IPv4 header.
type IPFlags uint8

// IPv4 header flag bits.
const (
	IPFlagMF IPFlags = 1 << 0 // more fragments
	IPFlagDF IPFlags = 1 << 1 // don't fragment
	IPFlagEv IPFlags = 1 << 2 // evil bit (reserved; must be zero in the wild)
)

// String implements fmt.Stringer.
func (f IPFlags) String() string {
	s := ""
	if f&IPFlagEv != 0 {
		s += "R"
	}
	if f&IPFlagDF != 0 {
		s += "DF"
	}
	if f&IPFlagMF != 0 {
		s += "MF"
	}
	if s == "" {
		return "-"
	}
	return s
}

// IPv4HeaderLen is the length in bytes of an IPv4 header without options.
const IPv4HeaderLen = 20

// IPv4 is an IPv4 header without options. TotalLength and Checksum are
// computed during serialization; decoded values are preserved so that
// quoted-packet comparison can detect middlebox rewrites.
type IPv4 struct {
	TOS         uint8
	TotalLength uint16 // filled by SerializeTo; kept on decode
	ID          uint16
	Flags       IPFlags
	FragOffset  uint16 // in 8-byte units
	TTL         uint8
	Protocol    Protocol
	Checksum    uint16 // filled by SerializeTo; kept on decode
	Src, Dst    netip.Addr
}

var (
	errShortIP    = errors.New("netem: truncated IPv4 header")
	errNotIPv4    = errors.New("netem: not an IPv4 packet")
	errBadVersion = errors.New("netem: bad IP version")
)

// SerializeTo appends the wire representation of the header to b and returns
// the extended slice. payloadLen is the number of bytes following the header;
// it determines TotalLength. The Checksum and TotalLength fields of h are
// updated to the serialized values.
func (h *IPv4) SerializeTo(b []byte, payloadLen int) []byte {
	h.TotalLength = uint16(IPv4HeaderLen + payloadLen)
	start := len(b)
	b = append(b, make([]byte, IPv4HeaderLen)...)
	hdr := b[start:]
	hdr[0] = 4<<4 | IPv4HeaderLen/4
	hdr[1] = h.TOS
	binary.BigEndian.PutUint16(hdr[2:], h.TotalLength)
	binary.BigEndian.PutUint16(hdr[4:], h.ID)
	binary.BigEndian.PutUint16(hdr[6:], uint16(h.Flags)<<13|h.FragOffset&0x1fff)
	hdr[8] = h.TTL
	hdr[9] = uint8(h.Protocol)
	src := h.Src.As4()
	dst := h.Dst.As4()
	copy(hdr[12:16], src[:])
	copy(hdr[16:20], dst[:])
	h.Checksum = Checksum(hdr)
	binary.BigEndian.PutUint16(hdr[10:], h.Checksum)
	return b
}

// DecodeFromBytes parses an IPv4 header from the front of data and returns
// the header length consumed. The checksum is not verified here; use
// VerifyChecksum when integrity matters.
func (h *IPv4) DecodeFromBytes(data []byte) (int, error) {
	if len(data) < IPv4HeaderLen {
		return 0, errShortIP
	}
	if data[0]>>4 != 4 {
		return 0, errBadVersion
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < IPv4HeaderLen {
		return 0, errNotIPv4
	}
	if len(data) < ihl {
		return 0, errShortIP
	}
	h.TOS = data[1]
	h.TotalLength = binary.BigEndian.Uint16(data[2:])
	h.ID = binary.BigEndian.Uint16(data[4:])
	ff := binary.BigEndian.Uint16(data[6:])
	h.Flags = IPFlags(ff >> 13)
	h.FragOffset = ff & 0x1fff
	h.TTL = data[8]
	h.Protocol = Protocol(data[9])
	h.Checksum = binary.BigEndian.Uint16(data[10:])
	h.Src = netip.AddrFrom4([4]byte(data[12:16]))
	h.Dst = netip.AddrFrom4([4]byte(data[16:20]))
	return ihl, nil
}

// VerifyChecksum reports whether the serialized header bytes carry a valid
// Internet checksum.
func (h *IPv4) VerifyChecksum() bool {
	buf := h.SerializeTo(nil, int(h.TotalLength)-IPv4HeaderLen)
	return binary.BigEndian.Uint16(buf[10:]) == h.Checksum
}

// String implements fmt.Stringer.
func (h *IPv4) String() string {
	return fmt.Sprintf("IPv4 %s > %s ttl=%d proto=%s tos=%#x id=%d flags=%s",
		h.Src, h.Dst, h.TTL, h.Protocol, h.TOS, h.ID, h.Flags)
}
