package netem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// TCPFlags holds the flag bits of a TCP header.
type TCPFlags uint8

// TCP header flag bits.
const (
	TCPFin TCPFlags = 1 << 0
	TCPSyn TCPFlags = 1 << 1
	TCPRst TCPFlags = 1 << 2
	TCPPsh TCPFlags = 1 << 3
	TCPAck TCPFlags = 1 << 4
	TCPUrg TCPFlags = 1 << 5
)

// String implements fmt.Stringer, rendering flags in tcpdump order.
func (f TCPFlags) String() string {
	var parts []string
	for _, fl := range []struct {
		bit  TCPFlags
		name string
	}{
		{TCPSyn, "SYN"}, {TCPFin, "FIN"}, {TCPRst, "RST"},
		{TCPPsh, "PSH"}, {TCPAck, "ACK"}, {TCPUrg, "URG"},
	} {
		if f&fl.bit != 0 {
			parts = append(parts, fl.name)
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, "|")
}

// TCPOptionKind identifies a TCP option.
type TCPOptionKind uint8

// TCP option kinds used by the simulator and by middlebox fingerprinting.
const (
	TCPOptEnd       TCPOptionKind = 0
	TCPOptNop       TCPOptionKind = 1
	TCPOptMSS       TCPOptionKind = 2
	TCPOptWScale    TCPOptionKind = 3
	TCPOptSACKPerm  TCPOptionKind = 4
	TCPOptTimestamp TCPOptionKind = 8
)

// TCPOption is a single TCP option as kind plus raw data (excluding the kind
// and length octets).
type TCPOption struct {
	Kind TCPOptionKind
	Data []byte
}

// TCPHeaderLen is the length in bytes of a TCP header without options.
const TCPHeaderLen = 20

// TCP is a TCP header. Checksum is computed by SerializeTo using the
// enclosing IPv4 addresses; decoded values are preserved.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            TCPFlags
	Window           uint16
	Checksum         uint16 // filled by SerializeTo; kept on decode
	Urgent           uint16
	Options          []TCPOption
}

var errShortTCP = errors.New("netem: truncated TCP header")

// headerLen returns the TCP header length including padded options.
func (t *TCP) headerLen() int {
	optLen := 0
	for _, o := range t.Options {
		switch o.Kind {
		case TCPOptEnd, TCPOptNop:
			optLen++
		default:
			optLen += 2 + len(o.Data)
		}
	}
	// Pad to a 4-byte boundary.
	return TCPHeaderLen + (optLen+3)/4*4
}

// SerializeTo appends the wire representation of the header followed by
// payload to b, computing the checksum over the IPv4 pseudo-header formed
// from src and dst. Returns the extended slice.
func (t *TCP) SerializeTo(b []byte, src, dst [4]byte, payload []byte) []byte {
	start := len(b)
	b = t.serializeHeaderTo(b)
	b = append(b, payload...)
	seg := b[start:]
	init := pseudoHeaderSum(src, dst, uint8(ProtoTCP), len(seg))
	t.Checksum = checksumWithInitial(init, seg)
	binary.BigEndian.PutUint16(seg[16:], t.Checksum)
	return b
}

// serializeHeaderTo appends the header (including padded options) to b with
// the checksum field zeroed; the caller computes and patches the checksum
// once the covered range is known.
func (t *TCP) serializeHeaderTo(b []byte) []byte {
	hl := t.headerLen()
	start := len(b)
	b = append(b, make([]byte, hl)...)
	hdr := b[start:]
	binary.BigEndian.PutUint16(hdr[0:], t.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:], t.DstPort)
	binary.BigEndian.PutUint32(hdr[4:], t.Seq)
	binary.BigEndian.PutUint32(hdr[8:], t.Ack)
	hdr[12] = uint8(hl/4) << 4
	hdr[13] = uint8(t.Flags)
	binary.BigEndian.PutUint16(hdr[14:], t.Window)
	binary.BigEndian.PutUint16(hdr[18:], t.Urgent)
	off := TCPHeaderLen
	for _, o := range t.Options {
		switch o.Kind {
		case TCPOptEnd, TCPOptNop:
			hdr[off] = uint8(o.Kind)
			off++
		default:
			hdr[off] = uint8(o.Kind)
			hdr[off+1] = uint8(2 + len(o.Data))
			copy(hdr[off+2:], o.Data)
			off += 2 + len(o.Data)
		}
	}
	// Remaining bytes up to hl are zero (end-of-options padding).
	return b
}

// DecodeFromBytes parses a TCP header from data and returns the header
// length consumed (including options). Option data is copied out of data.
func (t *TCP) DecodeFromBytes(data []byte) (int, error) {
	return t.decodeFromBytes(data, false)
}

// decodeFromBytes parses the header. With alias set, option data slices
// alias data (zero-copy); the caller must keep data immutable while the
// header is live. The Options slice itself reuses t's existing capacity so
// a pooled header decodes without allocating.
func (t *TCP) decodeFromBytes(data []byte, alias bool) (int, error) {
	if len(data) < TCPHeaderLen {
		return 0, errShortTCP
	}
	hl := int(data[12]>>4) * 4
	if hl < TCPHeaderLen || len(data) < hl {
		return 0, errShortTCP
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:])
	t.DstPort = binary.BigEndian.Uint16(data[2:])
	t.Seq = binary.BigEndian.Uint32(data[4:])
	t.Ack = binary.BigEndian.Uint32(data[8:])
	t.Flags = TCPFlags(data[13])
	t.Window = binary.BigEndian.Uint16(data[14:])
	t.Checksum = binary.BigEndian.Uint16(data[16:])
	t.Urgent = binary.BigEndian.Uint16(data[18:])
	if alias {
		t.Options = t.Options[:0]
	} else {
		t.Options = nil
	}
	opts := data[TCPHeaderLen:hl]
	for i := 0; i < len(opts); {
		kind := TCPOptionKind(opts[i])
		switch kind {
		case TCPOptEnd:
			i = len(opts)
		case TCPOptNop:
			t.Options = append(t.Options, TCPOption{Kind: kind})
			i++
		default:
			if i+1 >= len(opts) {
				return 0, errShortTCP
			}
			l := int(opts[i+1])
			if l < 2 || i+l > len(opts) {
				return 0, errShortTCP
			}
			d := opts[i+2 : i+l : i+l]
			if !alias {
				d = append([]byte(nil), d...)
			}
			t.Options = append(t.Options, TCPOption{Kind: kind, Data: d})
			i += l
		}
	}
	return hl, nil
}

// OptionKinds returns the ordered list of option kinds present, a feature
// used when fingerprinting injected packets (§7.1 of the paper).
func (t *TCP) OptionKinds() []TCPOptionKind {
	kinds := make([]TCPOptionKind, len(t.Options))
	for i, o := range t.Options {
		kinds[i] = o.Kind
	}
	return kinds
}

// String implements fmt.Stringer.
func (t *TCP) String() string {
	return fmt.Sprintf("TCP %d > %d [%s] seq=%d ack=%d win=%d",
		t.SrcPort, t.DstPort, t.Flags, t.Seq, t.Ack, t.Window)
}
