// Package netem implements the wire-format packet model used by the
// censorship-device measurement tools and by the simulated network substrate.
//
// The design follows the layer idiom popularized by gopacket: each protocol
// layer (IPv4, TCP, ICMP) is a struct whose zero value is usable, with
// SerializeTo and DecodeFromBytes methods that produce and consume exact wire
// bytes, including checksums. A Packet bundles an IPv4 header with exactly
// one transport layer and an application payload.
//
// Faithful wire formats matter here because CenTrace inspects the quoted
// packet inside ICMP Time Exceeded errors (RFC 792 quotes the IP header plus
// 64 bits of payload; RFC 1812 routers quote more) to detect middlebox header
// rewrites, and because stateful middleboxes and endpoints parse the raw
// bytes of HTTP requests and TLS Client Hello messages carried as payloads.
package netem
