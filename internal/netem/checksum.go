package netem

// Checksum computes the Internet checksum (RFC 1071) over data.
// The returned value is ready to be stored in a header checksum field.
func Checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// pseudoHeaderSum folds the IPv4 pseudo-header used by the TCP checksum
// into a partial sum that tcpChecksum completes.
func pseudoHeaderSum(src, dst [4]byte, protocol uint8, tcpLen int) uint32 {
	var sum uint32
	sum += uint32(src[0])<<8 | uint32(src[1])
	sum += uint32(src[2])<<8 | uint32(src[3])
	sum += uint32(dst[0])<<8 | uint32(dst[1])
	sum += uint32(dst[2])<<8 | uint32(dst[3])
	sum += uint32(protocol)
	sum += uint32(tcpLen)
	return sum
}

// checksumWithInitial computes the Internet checksum over data starting from
// an initial partial sum (used for pseudo-header inclusion).
func checksumWithInitial(initial uint32, data []byte) uint16 {
	sum := initial
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}
