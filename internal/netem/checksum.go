package netem

// Checksum computes the Internet checksum (RFC 1071) over data.
// The returned value is ready to be stored in a header checksum field.
func Checksum(data []byte) uint16 {
	return foldSum(addToSum(0, data))
}

// addToSum accumulates data into a running ones-complement partial sum
// without finalizing it. Chaining addToSum over consecutive chunks equals
// summing their concatenation as long as every chunk but the last has even
// length (all header lengths here are multiples of 4, so the payload always
// starts on an even offset).
func addToSum(sum uint32, data []byte) uint32 {
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	return sum
}

// foldSum folds a partial sum to 16 bits and complements it, producing the
// final checksum field value.
func foldSum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// pseudoHeaderSum folds the IPv4 pseudo-header used by the TCP checksum
// into a partial sum that tcpChecksum completes.
func pseudoHeaderSum(src, dst [4]byte, protocol uint8, tcpLen int) uint32 {
	var sum uint32
	sum += uint32(src[0])<<8 | uint32(src[1])
	sum += uint32(src[2])<<8 | uint32(src[3])
	sum += uint32(dst[0])<<8 | uint32(dst[1])
	sum += uint32(dst[2])<<8 | uint32(dst[3])
	sum += uint32(protocol)
	sum += uint32(tcpLen)
	return sum
}

// checksumWithInitial computes the Internet checksum over data starting from
// an initial partial sum (used for pseudo-header inclusion).
func checksumWithInitial(initial uint32, data []byte) uint16 {
	return foldSum(addToSum(initial, data))
}
