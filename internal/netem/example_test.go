package netem_test

import (
	"fmt"
	"net/netip"

	"cendev/internal/netem"
)

// Example builds a TCP packet, serializes it to wire bytes, and quotes it
// inside an ICMP Time Exceeded the way a router would — the primitive
// CenTrace's Tracebox-style comparison is built on.
func Example() {
	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("192.0.2.7")
	probe := netem.NewTCPPacket(src, dst, 40000, 80, netem.TCPPsh|netem.TCPAck, 1, 1,
		[]byte("GET / HTTP/1.1\r\nHost: example.com\r\n\r\n"))
	probe.IP.TTL = 3

	router := netip.MustParseAddr("172.16.0.1")
	te, _ := netem.NewTimeExceeded(router, probe, 8) // RFC 792 minimal quote
	quoted, _ := te.ICMP.QuotedPacket()
	srcPort, dstPort, _ := quoted.QuotedPorts()
	delta := netem.CompareQuote(probe, quoted)

	fmt.Printf("quoted ports %d>%d rfc792=%v delta=%s\n",
		srcPort, dstPort, quoted.FollowsRFC792Only(), delta)
	// Output: quoted ports 40000>80 rfc792=true delta=no-delta
}
