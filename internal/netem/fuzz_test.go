package netem

import (
	"net/netip"
	"testing"
)

// FuzzDecodePacket ensures the wire decoder never panics and that
// re-serializing a decoded packet reproduces decodable bytes.
func FuzzDecodePacket(f *testing.F) {
	tcpPkt := NewTCPPacket(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"),
		1234, 80, TCPPsh|TCPAck, 1, 1, []byte("GET / HTTP/1.1\r\n\r\n"))
	wire, _ := tcpPkt.Serialize()
	f.Add(wire)
	udpPkt := NewUDPPacket(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"),
		1234, 53, []byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0})
	uwire, _ := udpPkt.Serialize()
	f.Add(uwire)
	te, _ := NewTimeExceeded(netip.MustParseAddr("10.0.0.9"), tcpPkt, 8)
	iwire, _ := te.Serialize()
	f.Add(iwire)
	f.Add([]byte{})
	f.Add([]byte{0x45})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePacket(data)
		if err != nil {
			return
		}
		rewire, err := p.Serialize()
		if err != nil {
			t.Fatalf("decoded packet failed to serialize: %v", err)
		}
		if _, err := DecodePacket(rewire); err != nil {
			t.Fatalf("re-serialized packet failed to decode: %v", err)
		}
		if p.ICMP != nil {
			p.ICMP.QuotedPacket() // must not panic
		}
	})
}
