package netem

import (
	"bytes"
	"sort"
	"strings"
)

// QuoteDelta describes fields of a sent probe that differ in the packet
// quoted back by a router's ICMP error. Following Tracebox, CenTrace uses
// these deltas both to detect middlebox rewrites on the path and as
// clustering features (§4.3, §7.1: 32.06% of quotes differed in TOS; one
// differed in IP flags).
type QuoteDelta struct {
	TOSChanged        bool
	IPFlagsChanged    bool
	IPIDChanged       bool
	SeqChanged        bool
	PortsChanged      bool
	PayloadTruncated  bool // quote carries less application data than sent
	PayloadChanged    bool // quoted application bytes differ from sent bytes
	RFC792Only        bool // router quoted only the 64-bit minimum
	TTLAtQuote        uint8
	QuotedPayloadLen  int
	changedFieldCache []string
}

// CompareQuote compares the probe as sent with the quoted packet from an
// ICMP error. TTL is excluded: it legitimately differs by the hop count.
func CompareQuote(sent *Packet, quoted *QuotedPacket) QuoteDelta {
	d := QuoteDelta{
		TOSChanged:       sent.IP.TOS != quoted.IP.TOS,
		IPFlagsChanged:   sent.IP.Flags != quoted.IP.Flags,
		IPIDChanged:      sent.IP.ID != quoted.IP.ID,
		RFC792Only:       quoted.FollowsRFC792Only(),
		TTLAtQuote:       quoted.IP.TTL,
		QuotedPayloadLen: len(quoted.TransportBytes),
	}
	if sent.TCP != nil {
		if src, dst, ok := quoted.QuotedPorts(); ok {
			d.PortsChanged = src != sent.TCP.SrcPort || dst != sent.TCP.DstPort
		}
		if seq, ok := quoted.QuotedSeq(); ok {
			d.SeqChanged = seq != sent.TCP.Seq
		}
		// Application payload comparison only possible with RFC 1812-style
		// quotes that include bytes past the TCP header.
		sentHL := sent.TCP.headerLen()
		if len(quoted.TransportBytes) > sentHL {
			quotedApp := quoted.TransportBytes[sentHL:]
			if len(quotedApp) < len(sent.Payload) {
				d.PayloadTruncated = true
			}
			n := len(quotedApp)
			if n > len(sent.Payload) {
				n = len(sent.Payload)
			}
			d.PayloadChanged = !bytes.Equal(quotedApp[:n], sent.Payload[:n])
		} else if len(sent.Payload) > 0 {
			d.PayloadTruncated = true
		}
	}
	return d
}

// ChangedFields lists the names of fields that differ, in stable order, for
// use as one-hot clustering features.
func (d *QuoteDelta) ChangedFields() []string {
	if d.changedFieldCache != nil {
		return d.changedFieldCache
	}
	var fields []string
	add := func(cond bool, name string) {
		if cond {
			fields = append(fields, name)
		}
	}
	add(d.TOSChanged, "IPTOSChanged")
	add(d.IPFlagsChanged, "IPFlagsChanged")
	add(d.IPIDChanged, "IPIDChanged")
	add(d.SeqChanged, "TCPSeqChanged")
	add(d.PortsChanged, "TCPPortsChanged")
	add(d.PayloadChanged, "PayloadChanged")
	sort.Strings(fields)
	d.changedFieldCache = fields
	return fields
}

// Any reports whether any field (other than benign truncation) changed.
func (d *QuoteDelta) Any() bool {
	return d.TOSChanged || d.IPFlagsChanged || d.IPIDChanged ||
		d.SeqChanged || d.PortsChanged || d.PayloadChanged
}

// String implements fmt.Stringer.
func (d QuoteDelta) String() string {
	f := d.ChangedFields()
	if len(f) == 0 {
		return "no-delta"
	}
	return strings.Join(f, ",")
}
