package netem

// Binary record codecs (internal/wire primitives) for the netem types
// that measurement results persist: the ICMP quoted packet and the
// Tracebox-style quote delta. Field order is the schema; the containing
// record's version byte gates evolution, so these carry none of their
// own. Append/Dec pairs must mirror each other exactly — the round-trip
// fuzz targets in centrace hold them to that.

import "cendev/internal/wire"

// AppendWire appends the header's binary record form to b.
func (h *IPv4) AppendWire(b []byte) []byte {
	b = append(b, h.TOS)
	b = wire.AppendUvarint(b, uint64(h.TotalLength))
	b = wire.AppendUvarint(b, uint64(h.ID))
	b = append(b, byte(h.Flags))
	b = wire.AppendUvarint(b, uint64(h.FragOffset))
	b = append(b, h.TTL, byte(h.Protocol))
	b = wire.AppendUvarint(b, uint64(h.Checksum))
	b = wire.AppendAddr(b, h.Src)
	return wire.AppendAddr(b, h.Dst)
}

// DecodeWire reads the header's binary record form from d.
func (h *IPv4) DecodeWire(d *wire.Dec) {
	h.TOS = d.Byte()
	h.TotalLength = uint16(d.Uvarint())
	h.ID = uint16(d.Uvarint())
	h.Flags = IPFlags(d.Byte())
	h.FragOffset = uint16(d.Uvarint())
	h.TTL = d.Byte()
	h.Protocol = Protocol(d.Byte())
	h.Checksum = uint16(d.Uvarint())
	h.Src = d.Addr()
	h.Dst = d.Addr()
}

// AppendWire appends the header's binary record form to b.
func (t *TCP) AppendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(t.SrcPort))
	b = wire.AppendUvarint(b, uint64(t.DstPort))
	b = wire.AppendUvarint(b, uint64(t.Seq))
	b = wire.AppendUvarint(b, uint64(t.Ack))
	b = append(b, byte(t.Flags))
	b = wire.AppendUvarint(b, uint64(t.Window))
	b = wire.AppendUvarint(b, uint64(t.Checksum))
	b = wire.AppendUvarint(b, uint64(t.Urgent))
	b = wire.AppendUvarint(b, uint64(len(t.Options)))
	for _, o := range t.Options {
		b = append(b, byte(o.Kind))
		b = wire.AppendBytes(b, o.Data)
	}
	return b
}

// DecodeWire reads the header's binary record form from d.
func (t *TCP) DecodeWire(d *wire.Dec) {
	t.SrcPort = uint16(d.Uvarint())
	t.DstPort = uint16(d.Uvarint())
	t.Seq = uint32(d.Uvarint())
	t.Ack = uint32(d.Uvarint())
	t.Flags = TCPFlags(d.Byte())
	t.Window = uint16(d.Uvarint())
	t.Checksum = uint16(d.Uvarint())
	t.Urgent = uint16(d.Uvarint())
	n := d.Count()
	if d.Err() != nil || n == 0 {
		return
	}
	t.Options = make([]TCPOption, 0, n)
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		t.Options = append(t.Options, TCPOption{Kind: TCPOptionKind(d.Byte()), Data: d.Bytes()})
	}
}

// AppendWire appends the quoted packet's binary record form to b.
func (q *QuotedPacket) AppendWire(b []byte) []byte {
	b = q.IP.AppendWire(b)
	b = wire.AppendBytes(b, q.TransportBytes)
	b = wire.AppendBool(b, q.TCP != nil)
	if q.TCP != nil {
		b = q.TCP.AppendWire(b)
	}
	return b
}

// DecodeWire reads the quoted packet's binary record form from d.
func (q *QuotedPacket) DecodeWire(d *wire.Dec) {
	q.IP.DecodeWire(d)
	q.TransportBytes = d.Bytes()
	if d.Bool() {
		q.TCP = &TCP{}
		q.TCP.DecodeWire(d)
	}
}

// AppendWire appends the delta's binary record form to b. The lazy
// changed-field cache is presentation state, not data, and is not
// persisted (the JSON form drops it the same way).
func (qd *QuoteDelta) AppendWire(b []byte) []byte {
	b = wire.AppendBool(b, qd.TOSChanged)
	b = wire.AppendBool(b, qd.IPFlagsChanged)
	b = wire.AppendBool(b, qd.IPIDChanged)
	b = wire.AppendBool(b, qd.SeqChanged)
	b = wire.AppendBool(b, qd.PortsChanged)
	b = wire.AppendBool(b, qd.PayloadTruncated)
	b = wire.AppendBool(b, qd.PayloadChanged)
	b = wire.AppendBool(b, qd.RFC792Only)
	b = append(b, qd.TTLAtQuote)
	return wire.AppendVarint(b, int64(qd.QuotedPayloadLen))
}

// DecodeWire reads the delta's binary record form from d.
func (qd *QuoteDelta) DecodeWire(d *wire.Dec) {
	qd.TOSChanged = d.Bool()
	qd.IPFlagsChanged = d.Bool()
	qd.IPIDChanged = d.Bool()
	qd.SeqChanged = d.Bool()
	qd.PortsChanged = d.Bool()
	qd.PayloadTruncated = d.Bool()
	qd.PayloadChanged = d.Bool()
	qd.RFC792Only = d.Bool()
	qd.TTLAtQuote = d.Byte()
	qd.QuotedPayloadLen = int(d.Varint())
}
