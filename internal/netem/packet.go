package netem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// Packet is a full IPv4 packet: one IP header, exactly one transport layer
// (TCP, UDP, or ICMP), and an optional application payload (TCP/UDP only).
type Packet struct {
	IP      IPv4
	TCP     *TCP  // exactly one of TCP, UDP, ICMP is non-nil
	UDP     *UDP  // exactly one of TCP, UDP, ICMP is non-nil
	ICMP    *ICMP // exactly one of TCP, UDP, ICMP is non-nil
	Payload []byte
}

var errNoTransport = errors.New("netem: packet has no transport layer")

// Serialize renders the packet to wire bytes, computing lengths and
// checksums in both headers.
func (p *Packet) Serialize() ([]byte, error) {
	return p.SerializeTo(nil)
}

// SerializeTo appends the full wire representation of the packet to b and
// returns the extended slice, computing lengths and checksums in both
// headers. Passing a scratch buffer (b[:0]) serializes with zero
// allocations once the buffer has grown to packet size.
func (p *Packet) SerializeTo(b []byte) ([]byte, error) {
	return p.serializeTo(b, -1)
}

// serializeTo appends the IP header plus the transport segment to b. When
// maxSeg >= 0 only the first maxSeg bytes of the transport segment are
// emitted, but lengths and checksums are still those of the full packet —
// the output is byte-identical to the same range of a full serialization,
// which is exactly what an ICMP quote of a packet prefix must carry.
func (p *Packet) serializeTo(b []byte, maxSeg int) ([]byte, error) {
	switch {
	case p.TCP != nil:
		t := p.TCP
		p.IP.Protocol = ProtoTCP
		segLen := t.headerLen() + len(p.Payload)
		b = p.IP.SerializeTo(b, segLen)
		segStart := len(b)
		b = t.serializeHeaderTo(b)
		src, dst := p.IP.Src.As4(), p.IP.Dst.As4()
		sum := pseudoHeaderSum(src, dst, uint8(ProtoTCP), segLen)
		sum = addToSum(sum, b[segStart:])
		sum = addToSum(sum, p.Payload)
		t.Checksum = foldSum(sum)
		binary.BigEndian.PutUint16(b[segStart+16:], t.Checksum)
		return appendSegTail(b, segStart, p.Payload, maxSeg), nil
	case p.UDP != nil:
		u := p.UDP
		p.IP.Protocol = ProtoUDP
		segLen := UDPHeaderLen + len(p.Payload)
		u.Length = uint16(segLen)
		b = p.IP.SerializeTo(b, segLen)
		segStart := len(b)
		b = append(b, make([]byte, UDPHeaderLen)...)
		hdr := b[segStart:]
		binary.BigEndian.PutUint16(hdr[0:], u.SrcPort)
		binary.BigEndian.PutUint16(hdr[2:], u.DstPort)
		binary.BigEndian.PutUint16(hdr[4:], u.Length)
		src, dst := p.IP.Src.As4(), p.IP.Dst.As4()
		sum := pseudoHeaderSum(src, dst, uint8(ProtoUDP), segLen)
		sum = addToSum(sum, hdr)
		sum = addToSum(sum, p.Payload)
		u.Checksum = foldSum(sum)
		if u.Checksum == 0 {
			u.Checksum = 0xffff // RFC 768: zero means "no checksum"
		}
		binary.BigEndian.PutUint16(hdr[6:], u.Checksum)
		return appendSegTail(b, segStart, p.Payload, maxSeg), nil
	case p.ICMP != nil:
		m := p.ICMP
		p.IP.Protocol = ProtoICMP
		segLen := icmpHeaderLenBytes + len(m.Quoted)
		b = p.IP.SerializeTo(b, segLen)
		segStart := len(b)
		b = append(b, make([]byte, icmpHeaderLenBytes)...)
		msg := b[segStart:]
		msg[0] = uint8(m.Type)
		msg[1] = m.Code
		binary.BigEndian.PutUint32(msg[4:], m.Rest)
		sum := addToSum(0, msg)
		sum = addToSum(sum, m.Quoted)
		m.Checksum = foldSum(sum)
		binary.BigEndian.PutUint16(msg[2:], m.Checksum)
		return appendSegTail(b, segStart, m.Quoted, maxSeg), nil
	default:
		return nil, errNoTransport
	}
}

// appendSegTail appends the transport payload (or quote) tail to b, whose
// transport segment began at segStart, truncating the segment to maxSeg
// bytes when maxSeg >= 0.
func appendSegTail(b []byte, segStart int, tail []byte, maxSeg int) []byte {
	if maxSeg < 0 {
		return append(b, tail...)
	}
	hdrLen := len(b) - segStart
	if maxSeg <= hdrLen {
		return b[:segStart+maxSeg]
	}
	if want := maxSeg - hdrLen; want < len(tail) {
		tail = tail[:want]
	}
	return append(b, tail...)
}

// DecodePacket parses wire bytes into a Packet. Payload, quoted bytes, and
// option data are copied, so the packet stays valid after data is reused.
func DecodePacket(data []byte) (*Packet, error) {
	var p Packet
	if err := p.decode(data, false); err != nil {
		return nil, err
	}
	return &p, nil
}

// DecodePacketAliased parses wire bytes into a Packet without copying:
// Payload, ICMP quoted bytes, and TCP option data alias data. The caller
// must keep data alive and unmodified for as long as the packet is in use,
// and must not call Reset or CloneInto-into this packet while the aliased
// buffers could still be read through it.
func DecodePacketAliased(data []byte) (*Packet, error) {
	var p Packet
	if err := p.decode(data, true); err != nil {
		return nil, err
	}
	return &p, nil
}

// DecodeAliased parses wire bytes into p without copying (see
// DecodePacketAliased). p's existing transport headers are reused when
// their type matches, so a pooled Packet decodes with zero allocations in
// steady state.
func (p *Packet) DecodeAliased(data []byte) error {
	return p.decode(data, true)
}

func (p *Packet) decode(data []byte, alias bool) error {
	n, err := p.IP.DecodeFromBytes(data)
	if err != nil {
		return err
	}
	rest := data[n:]
	switch p.IP.Protocol {
	case ProtoTCP:
		if p.TCP == nil {
			p.TCP = &TCP{}
		}
		hl, err := p.TCP.decodeFromBytes(rest, alias)
		if err != nil {
			p.TCP = nil
			return err
		}
		p.UDP, p.ICMP = nil, nil
		payload := rest[hl:len(rest):len(rest)]
		if !alias {
			payload = append([]byte(nil), payload...)
		}
		p.Payload = payload
	case ProtoUDP:
		if p.UDP == nil {
			p.UDP = &UDP{}
		}
		hl, err := p.UDP.DecodeFromBytes(rest)
		if err != nil {
			p.UDP = nil
			return err
		}
		p.TCP, p.ICMP = nil, nil
		payload := rest[hl:len(rest):len(rest)]
		if !alias {
			payload = append([]byte(nil), payload...)
		}
		p.Payload = payload
	case ProtoICMP:
		if p.ICMP == nil {
			p.ICMP = &ICMP{}
		}
		if err := p.ICMP.decodeFromBytes(rest, alias); err != nil {
			p.ICMP = nil
			return err
		}
		p.TCP, p.UDP = nil, nil
		p.Payload = nil
	default:
		return fmt.Errorf("netem: unsupported protocol %s", p.IP.Protocol)
	}
	return nil
}

// Reset clears the packet for reuse while keeping its owned allocations:
// transport header structs stay attached (zeroed) and slice capacities are
// retained. A Reset packet is ready for DecodeAliased or CloneInto with no
// fresh allocations, making Packet values sync.Pool-compatible.
//
// Reset must only be called on packets whose buffers the packet owns. A
// packet populated by DecodeAliased borrows its Payload/Quoted/option
// storage from the decode input; Reset would retain that borrowed capacity
// and a later CloneInto would scribble over the lender's bytes. Alias-
// decoded packets are reset with *p = Packet{} instead.
func (p *Packet) Reset() {
	p.IP = IPv4{}
	p.Payload = p.Payload[:0]
	if p.TCP != nil {
		opts := p.TCP.Options[:0]
		*p.TCP = TCP{Options: opts}
	}
	if p.UDP != nil {
		*p.UDP = UDP{}
	}
	if p.ICMP != nil {
		quoted := p.ICMP.Quoted[:0]
		*p.ICMP = ICMP{Quoted: quoted}
	}
}

// CloneInto deep-copies p into q, reusing q's existing allocations
// (transport structs, payload and quote capacity) where possible. q must
// own its buffers — see Reset for the aliasing hazard. q ends up
// semantically identical to a Clone of p but with zero allocations in
// steady state; it shares no mutable memory with p.
func (p *Packet) CloneInto(q *Packet) {
	q.IP = p.IP
	q.Payload = append(q.Payload[:0], p.Payload...)
	if p.TCP != nil {
		if q.TCP == nil {
			q.TCP = &TCP{}
		}
		opts := q.TCP.Options[:0]
		*q.TCP = *p.TCP
		q.TCP.Options = opts
		for _, o := range p.TCP.Options {
			q.TCP.Options = append(q.TCP.Options, TCPOption{Kind: o.Kind, Data: append([]byte(nil), o.Data...)})
		}
	} else {
		q.TCP = nil
	}
	if p.UDP != nil {
		if q.UDP == nil {
			q.UDP = &UDP{}
		}
		*q.UDP = *p.UDP
	} else {
		q.UDP = nil
	}
	if p.ICMP != nil {
		if q.ICMP == nil {
			q.ICMP = &ICMP{}
		}
		quoted := append(q.ICMP.Quoted[:0], p.ICMP.Quoted...)
		*q.ICMP = *p.ICMP
		q.ICMP.Quoted = quoted
	} else {
		q.ICMP = nil
	}
}

// Clone returns a deep copy of the packet.
func (p *Packet) Clone() *Packet {
	q := &Packet{IP: p.IP, Payload: append([]byte(nil), p.Payload...)}
	if p.TCP != nil {
		t := *p.TCP
		t.Options = make([]TCPOption, len(p.TCP.Options))
		for i, o := range p.TCP.Options {
			t.Options[i] = TCPOption{Kind: o.Kind, Data: append([]byte(nil), o.Data...)}
		}
		q.TCP = &t
	}
	if p.UDP != nil {
		u := *p.UDP
		q.UDP = &u
	}
	if p.ICMP != nil {
		m := *p.ICMP
		m.Quoted = append([]byte(nil), p.ICMP.Quoted...)
		q.ICMP = &m
	}
	return q
}

// String implements fmt.Stringer, summarizing all layers.
func (p *Packet) String() string {
	var b strings.Builder
	b.WriteString(p.IP.String())
	if p.TCP != nil {
		fmt.Fprintf(&b, " / %s", p.TCP)
	}
	if p.UDP != nil {
		fmt.Fprintf(&b, " / UDP %d > %d", p.UDP.SrcPort, p.UDP.DstPort)
	}
	if p.ICMP != nil {
		fmt.Fprintf(&b, " / %s", p.ICMP)
	}
	if len(p.Payload) > 0 {
		fmt.Fprintf(&b, " / %dB payload", len(p.Payload))
	}
	return b.String()
}

// tcpPacket co-locates a Packet with its TCP header so one allocation
// serves both — the hot path builds millions of these.
type tcpPacket struct {
	p Packet
	t TCP
}

// FillTCP rewrites p in place as a TCP packet with the same defaults as
// NewTCPPacket, reusing p's TCP struct when it has one. The payload is
// aliased, not copied. p must own its buffers (see Reset); callers use
// this to recycle a scratch packet across sequential sends.
func (p *Packet) FillTCP(src, dst netip.Addr, srcPort, dstPort uint16, flags TCPFlags, seq, ack uint32, payload []byte) {
	t := p.TCP
	if t == nil {
		t = &TCP{}
	}
	*t = TCP{
		SrcPort: srcPort, DstPort: dstPort,
		Seq: seq, Ack: ack, Flags: flags, Window: 65535,
	}
	*p = Packet{IP: IPv4{TTL: 64, Src: src, Dst: dst, Protocol: ProtoTCP}, TCP: t, Payload: payload}
}

// NewTCPPacket builds a TCP packet with the given addressing, flags, and
// payload, using defaults suitable for the simulator.
func NewTCPPacket(src, dst netip.Addr, srcPort, dstPort uint16, flags TCPFlags, seq, ack uint32, payload []byte) *Packet {
	x := &tcpPacket{
		p: Packet{IP: IPv4{TTL: 64, Src: src, Dst: dst, Protocol: ProtoTCP}, Payload: payload},
		t: TCP{
			SrcPort: srcPort, DstPort: dstPort,
			Seq: seq, Ack: ack, Flags: flags, Window: 65535,
		},
	}
	x.p.TCP = &x.t
	return &x.p
}

// icmpPacket co-locates a Packet with its ICMP message, as tcpPacket does
// for TCP.
type icmpPacket struct {
	p Packet
	m ICMP
}

// NewTimeExceeded builds the ICMP Time Exceeded error a router at routerAddr
// sends back to the source of offending. quoteLen controls how many bytes of
// the offending packet's transport segment are quoted: 8 reproduces the
// RFC 792 minimum; larger values emulate RFC 1812 routers that quote more.
// The quote is built from the offending packet as the router observed it, so
// any header rewrites applied by upstream middleboxes are visible to
// Tracebox-style comparison. Only the quoted prefix is ever serialized; the
// offending payload is summed into the quoted checksum without being
// rendered.
func NewTimeExceeded(routerAddr netip.Addr, offending *Packet, quoteLen int) (*Packet, error) {
	x := &icmpPacket{}
	x.p.ICMP = &x.m
	if err := x.p.FillTimeExceeded(routerAddr, offending, quoteLen); err != nil {
		return nil, err
	}
	return &x.p, nil
}

// FillTimeExceeded rewrites p in place as the ICMP Time Exceeded error
// NewTimeExceeded builds, reusing p's ICMP struct and quote buffer when
// present. p must own its buffers (see Reset); consumers that retain quoted
// bytes past the packet's lifetime must copy them (ICMP.QuotedPacket already
// does).
func (p *Packet) FillTimeExceeded(routerAddr netip.Addr, offending *Packet, quoteLen int) error {
	m := p.ICMP
	if m == nil {
		m = &ICMP{}
	}
	quoted, err := offending.serializeTo(m.Quoted[:0], quoteLen)
	if err != nil {
		return err
	}
	*m = ICMP{
		Type:   ICMPTimeExceeded,
		Code:   0, // TTL exceeded in transit
		Quoted: quoted,
	}
	*p = Packet{IP: IPv4{TTL: 64, Src: routerAddr, Dst: offending.IP.Src, Protocol: ProtoICMP}, ICMP: m}
	return nil
}
