package netem

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// Packet is a full IPv4 packet: one IP header, exactly one transport layer
// (TCP, UDP, or ICMP), and an optional application payload (TCP/UDP only).
type Packet struct {
	IP      IPv4
	TCP     *TCP  // exactly one of TCP, UDP, ICMP is non-nil
	UDP     *UDP  // exactly one of TCP, UDP, ICMP is non-nil
	ICMP    *ICMP // exactly one of TCP, UDP, ICMP is non-nil
	Payload []byte
}

var errNoTransport = errors.New("netem: packet has no transport layer")

// Serialize renders the packet to wire bytes, computing lengths and
// checksums in both headers.
func (p *Packet) Serialize() ([]byte, error) {
	switch {
	case p.TCP != nil:
		src, dst := p.IP.Src.As4(), p.IP.Dst.As4()
		seg := p.TCP.SerializeTo(nil, src, dst, p.Payload)
		p.IP.Protocol = ProtoTCP
		out := p.IP.SerializeTo(nil, len(seg))
		return append(out, seg...), nil
	case p.UDP != nil:
		src, dst := p.IP.Src.As4(), p.IP.Dst.As4()
		seg := p.UDP.SerializeTo(nil, src, dst, p.Payload)
		p.IP.Protocol = ProtoUDP
		out := p.IP.SerializeTo(nil, len(seg))
		return append(out, seg...), nil
	case p.ICMP != nil:
		msg := p.ICMP.SerializeTo(nil)
		p.IP.Protocol = ProtoICMP
		out := p.IP.SerializeTo(nil, len(msg))
		return append(out, msg...), nil
	default:
		return nil, errNoTransport
	}
}

// DecodePacket parses wire bytes into a Packet.
func DecodePacket(data []byte) (*Packet, error) {
	var p Packet
	n, err := p.IP.DecodeFromBytes(data)
	if err != nil {
		return nil, err
	}
	rest := data[n:]
	switch p.IP.Protocol {
	case ProtoTCP:
		var tcp TCP
		hl, err := tcp.DecodeFromBytes(rest)
		if err != nil {
			return nil, err
		}
		p.TCP = &tcp
		p.Payload = append([]byte(nil), rest[hl:]...)
	case ProtoUDP:
		var udp UDP
		hl, err := udp.DecodeFromBytes(rest)
		if err != nil {
			return nil, err
		}
		p.UDP = &udp
		p.Payload = append([]byte(nil), rest[hl:]...)
	case ProtoICMP:
		var icmp ICMP
		if err := icmp.DecodeFromBytes(rest); err != nil {
			return nil, err
		}
		p.ICMP = &icmp
	default:
		return nil, fmt.Errorf("netem: unsupported protocol %s", p.IP.Protocol)
	}
	return &p, nil
}

// Clone returns a deep copy of the packet.
func (p *Packet) Clone() *Packet {
	q := &Packet{IP: p.IP, Payload: append([]byte(nil), p.Payload...)}
	if p.TCP != nil {
		t := *p.TCP
		t.Options = make([]TCPOption, len(p.TCP.Options))
		for i, o := range p.TCP.Options {
			t.Options[i] = TCPOption{Kind: o.Kind, Data: append([]byte(nil), o.Data...)}
		}
		q.TCP = &t
	}
	if p.UDP != nil {
		u := *p.UDP
		q.UDP = &u
	}
	if p.ICMP != nil {
		m := *p.ICMP
		m.Quoted = append([]byte(nil), p.ICMP.Quoted...)
		q.ICMP = &m
	}
	return q
}

// String implements fmt.Stringer, summarizing all layers.
func (p *Packet) String() string {
	var b strings.Builder
	b.WriteString(p.IP.String())
	if p.TCP != nil {
		fmt.Fprintf(&b, " / %s", p.TCP)
	}
	if p.UDP != nil {
		fmt.Fprintf(&b, " / UDP %d > %d", p.UDP.SrcPort, p.UDP.DstPort)
	}
	if p.ICMP != nil {
		fmt.Fprintf(&b, " / %s", p.ICMP)
	}
	if len(p.Payload) > 0 {
		fmt.Fprintf(&b, " / %dB payload", len(p.Payload))
	}
	return b.String()
}

// NewTCPPacket builds a TCP packet with the given addressing, flags, and
// payload, using defaults suitable for the simulator.
func NewTCPPacket(src, dst netip.Addr, srcPort, dstPort uint16, flags TCPFlags, seq, ack uint32, payload []byte) *Packet {
	return &Packet{
		IP: IPv4{TTL: 64, Src: src, Dst: dst, Protocol: ProtoTCP},
		TCP: &TCP{
			SrcPort: srcPort, DstPort: dstPort,
			Seq: seq, Ack: ack, Flags: flags, Window: 65535,
		},
		Payload: payload,
	}
}

// NewTimeExceeded builds the ICMP Time Exceeded error a router at routerAddr
// sends back to the source of offending. quoteLen controls how many bytes of
// the offending packet's transport segment are quoted: 8 reproduces the
// RFC 792 minimum; larger values emulate RFC 1812 routers that quote more.
// The quote is built from the offending packet as the router observed it, so
// any header rewrites applied by upstream middleboxes are visible to
// Tracebox-style comparison.
func NewTimeExceeded(routerAddr netip.Addr, offending *Packet, quoteLen int) (*Packet, error) {
	wire, err := offending.Serialize()
	if err != nil {
		return nil, err
	}
	ihl := IPv4HeaderLen
	end := ihl + quoteLen
	if end > len(wire) {
		end = len(wire)
	}
	return &Packet{
		IP: IPv4{TTL: 64, Src: routerAddr, Dst: offending.IP.Src, Protocol: ProtoICMP},
		ICMP: &ICMP{
			Type:   ICMPTimeExceeded,
			Code:   0, // TTL exceeded in transit
			Quoted: append([]byte(nil), wire[:end]...),
		},
	}, nil
}
