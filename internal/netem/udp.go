package netem

import (
	"encoding/binary"
	"errors"
	"net/netip"
)

// UDPHeaderLen is the length in bytes of a UDP header.
const UDPHeaderLen = 8

// UDP is a UDP header. Length and Checksum are computed by SerializeTo;
// decoded values are preserved. UDP carries the DNS measurement extension
// (the paper's §8 future-work protocol).
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16 // filled by SerializeTo; kept on decode
	Checksum         uint16 // filled by SerializeTo; kept on decode
}

var errShortUDP = errors.New("netem: truncated UDP header")

// SerializeTo appends the wire representation of the header followed by
// payload to b, computing the checksum over the IPv4 pseudo-header.
func (u *UDP) SerializeTo(b []byte, src, dst [4]byte, payload []byte) []byte {
	u.Length = uint16(UDPHeaderLen + len(payload))
	start := len(b)
	b = append(b, make([]byte, UDPHeaderLen)...)
	b = append(b, payload...)
	hdr := b[start:]
	binary.BigEndian.PutUint16(hdr[0:], u.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:], u.DstPort)
	binary.BigEndian.PutUint16(hdr[4:], u.Length)
	seg := b[start:]
	init := pseudoHeaderSum(src, dst, uint8(ProtoUDP), len(seg))
	u.Checksum = checksumWithInitial(init, seg)
	if u.Checksum == 0 {
		u.Checksum = 0xffff // RFC 768: zero means "no checksum"
	}
	binary.BigEndian.PutUint16(hdr[6:], u.Checksum)
	return b
}

// DecodeFromBytes parses a UDP header from data and returns the header
// length consumed.
func (u *UDP) DecodeFromBytes(data []byte) (int, error) {
	if len(data) < UDPHeaderLen {
		return 0, errShortUDP
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:])
	u.DstPort = binary.BigEndian.Uint16(data[2:])
	u.Length = binary.BigEndian.Uint16(data[4:])
	u.Checksum = binary.BigEndian.Uint16(data[6:])
	return UDPHeaderLen, nil
}

// udpPacket co-locates a Packet with its UDP header so one allocation
// serves both.
type udpPacket struct {
	p Packet
	u UDP
}

// NewUDPPacket builds a UDP packet with defaults suitable for the
// simulator.
func NewUDPPacket(src, dst netip.Addr, srcPort, dstPort uint16, payload []byte) *Packet {
	x := &udpPacket{
		p: Packet{IP: IPv4{TTL: 64, Src: src, Dst: dst, Protocol: ProtoUDP}, Payload: payload},
		u: UDP{SrcPort: srcPort, DstPort: dstPort},
	}
	x.p.UDP = &x.u
	return &x.p
}

// FillUDP rewrites p in place as a UDP packet with the same defaults as
// NewUDPPacket, reusing p's UDP struct when it has one. The payload is
// aliased, not copied. p must own its buffers (see Reset).
func (p *Packet) FillUDP(src, dst netip.Addr, srcPort, dstPort uint16, payload []byte) {
	u := p.UDP
	if u == nil {
		u = &UDP{}
	}
	*u = UDP{SrcPort: srcPort, DstPort: dstPort}
	*p = Packet{IP: IPv4{TTL: 64, Src: src, Dst: dst, Protocol: ProtoUDP}, UDP: u, Payload: payload}
}
