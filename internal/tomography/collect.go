package tomography

import (
	"cendev/internal/blockpage"
	"cendev/internal/httpgram"
	"cendev/internal/netem"
	"cendev/internal/simnet"
	"cendev/internal/topology"
)

// CollectConfig parameterizes a measurement campaign over a network's
// routing epochs.
type CollectConfig struct {
	// TestDomain is the potentially censored hostname; ControlDomain is a
	// known-innocuous hostname served by the same endpoint. A test probe
	// only yields an observation when the control probe in the same epoch
	// completed cleanly — otherwise blocking is indistinguishable from
	// plain unreachability (a withdrawn route drops control traffic too).
	TestDomain    string
	ControlDomain string
	// Port is the endpoint TCP port (default 80).
	Port uint16
	// ProbesPerEpoch is how many test probes each vantage sends per epoch
	// (default 3). Each probe uses a fresh connection, so ECMP spreads
	// consecutive probes across paths where the topology allows.
	ProbesPerEpoch int
	// TTL is the probe TTL (default 64 — tomography probes run end to
	// end; only the verdict and the path matter, not hop distance).
	TTL uint8
}

func (c *CollectConfig) defaults() {
	if c.Port == 0 {
		c.Port = 80
	}
	if c.ProbesPerEpoch == 0 {
		c.ProbesPerEpoch = 3
	}
	if c.TTL == 0 {
		c.TTL = 64
	}
}

// probe verdicts, in the collector's internal classification.
type probeStatus int

const (
	statusClean probeStatus = iota
	statusBlocked
	statusUnreachable // dial refused or timed out: no baseline, not evidence
)

// Collect runs the measurement campaign: for every routing epoch of the
// network's route-dynamics engine (or the single canonical epoch when none
// is attached), each vantage sends control-gated test probes to the
// endpoint and records a blocking verdict together with the exact links
// its flow crossed. The virtual clock is advanced to each epoch's start,
// so the returned observations sample every routing configuration the
// schedule produces. Deterministic: observations depend only on the
// network state and config, never on wall time or iteration order.
func Collect(n *simnet.Network, vantages []*topology.Host, endpoint *topology.Host, cfg CollectConfig) []Observation {
	cfg.defaults()
	epochs := 1
	if eng := n.Routes(); eng != nil {
		epochs = eng.Epochs()
	}
	var out []Observation
	for e := 0; e < epochs; e++ {
		if eng := n.Routes(); eng != nil {
			if start := eng.EpochStart(e); n.Now() < start {
				n.Sleep(start - n.Now())
			}
		}
		for _, v := range vantages {
			for p := 0; p < cfg.ProbesPerEpoch; p++ {
				if ob, ok := probePair(n, v, endpoint, cfg); ok {
					out = append(out, ob)
				}
			}
		}
	}
	return out
}

// probePair runs one control-gated test probe from a vantage and returns
// the resulting observation. ok is false when the pair produced no
// evidence: the control probe did not complete cleanly (endpoint or route
// unreachable, or the control domain itself censored) or no route existed.
func probePair(n *simnet.Network, v, endpoint *topology.Host, cfg CollectConfig) (Observation, bool) {
	// Each pair starts from pristine device state so residual blocking
	// tripped by an earlier probe never contaminates this one's verdict.
	n.ResetDeviceState()
	if probeOnce(n, v, endpoint, cfg.ControlDomain, cfg) != statusClean {
		return Observation{}, false
	}
	// The control probe may itself have tripped flow state on devices
	// keyed loosely; reset again so the test probe is judged alone.
	n.ResetDeviceState()

	// Capture the test flow's path before dialing: Dial consumes exactly
	// one ephemeral port, so peeking the sequence gives the 5-tuple the
	// connection will hash with.
	srcPort := n.PortSeq()
	path := n.FlowPath(v, endpoint, srcPort, cfg.Port)
	if len(path) == 0 {
		return Observation{}, false
	}
	links := pathLinks(v, path)
	epoch := 0
	if eng := n.Routes(); eng != nil {
		epoch = eng.EpochAt(n.Now()).Index
	}

	status := probeOnce(n, v, endpoint, cfg.TestDomain, cfg)
	// With a clean control in hand, a failed test dial is interference:
	// the SYN passed content filters, so only a device dropping this flow
	// explains the silence.
	blocked := status != statusClean

	// A probe whose packets straddled an epoch boundary crossed links the
	// captured path no longer describes — drop it rather than feed the
	// solver a wrong incidence row.
	if eng := n.Routes(); eng != nil && eng.EpochAt(n.Now()).Index != epoch {
		return Observation{}, false
	}
	return Observation{
		Vantage:  v.ID,
		Endpoint: endpoint.ID,
		Epoch:    epoch,
		Blocked:  blocked,
		Links:    links,
	}, true
}

// probeOnce opens a fresh connection, requests the domain, and classifies
// the outcome the same way CenTrace's probe loop does: RST injection,
// in-order bare FIN, blockpage content, and silence all read as blocked;
// genuine (non-blockpage) data reads as clean.
func probeOnce(n *simnet.Network, v, endpoint *topology.Host, domain string, cfg CollectConfig) probeStatus {
	conn, err := n.Dial(v, endpoint, cfg.Port)
	if err != nil {
		return statusUnreachable
	}
	defer conn.Close()
	expected := conn.ExpectedSeq()
	ds := conn.SendPayload(httpgram.NewRequest(domain).Render(), cfg.TTL)
	for _, d := range ds {
		pkt := d.Packet
		if pkt.TCP == nil || pkt.IP.Src != endpoint.Addr {
			continue
		}
		switch {
		case pkt.TCP.Flags&netem.TCPRst != 0:
			return statusBlocked
		case len(pkt.Payload) > 0:
			if _, isBlockpage := blockpage.Match(pkt.Payload); isBlockpage {
				return statusBlocked
			}
			return statusClean
		case pkt.TCP.Flags&netem.TCPFin != 0 && pkt.TCP.Seq == expected:
			// A bare in-order FIN before any data is an injected teardown;
			// a genuine post-data FIN carries a later sequence number.
			return statusBlocked
		}
	}
	// No terminating response to the request: the payload was dropped
	// in-network (the handshake already proved the endpoint reachable).
	return statusBlocked
}

// pathLinks converts a router-level flow path into the undirected link set
// an observation reports, including the vantage's access link — the first
// place a censor can sit.
func pathLinks(v *topology.Host, path []*topology.Router) []Link {
	links := make([]Link, 0, len(path))
	links = append(links, MakeLink(simnet.ClientAccessLink(v), path[0].ID))
	for i := 1; i < len(path); i++ {
		links = append(links, MakeLink(path[i-1].ID, path[i].ID))
	}
	return links
}
