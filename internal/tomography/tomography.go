// Package tomography is the churn-based censorship localizer — the
// codebase's second, independent locator, cross-validated against
// CenTrace. Where CenTrace infers a device's position from TTL-limited
// probes on one path, tomography exploits route dynamics ("A Churn for
// the Better"): as routing epochs move flows on and off the censored
// link, the per-epoch reachability verdicts from multiple vantages form a
// boolean system over the link incidence matrix. A censoring link must
// lie on every blocked flow's path and on no clean flow's path, so the
// candidate set is
//
//	∩ {links of blocked observations}  \  ∪ {links of clean observations}
//
// — exact when a single link survives, ambiguous when several always
// co-occur, unlocalizable when churn never separated the censor from the
// clean traffic (or blocking was never observed). Observations carry the
// exact per-flow path, the simulation's stand-in for traceroute-derived
// path knowledge.
package tomography

import (
	"fmt"
	"sort"
)

// Link is an undirected router-level link in canonical order (A < B).
// Client access links use the simulator's "@host" pseudo-router name.
type Link struct {
	A string `json:"a"`
	B string `json:"b"`
}

// MakeLink canonicalizes an undirected link.
func MakeLink(a, b string) Link {
	if b < a {
		a, b = b, a
	}
	return Link{A: a, B: b}
}

// String implements fmt.Stringer.
func (l Link) String() string { return l.A + "<->" + l.B }

// Observation is one reachability measurement: a single probe flow from a
// vantage to an endpoint during one routing epoch, its blocking verdict,
// and the links of the path the flow took.
type Observation struct {
	Vantage  string `json:"vantage"`
	Endpoint string `json:"endpoint"`
	Epoch    int    `json:"epoch"`
	Blocked  bool   `json:"blocked"`
	Links    []Link `json:"links"`
}

// Verdict classifies a localization outcome.
type Verdict string

const (
	// Exact: one candidate link explains every observation.
	Exact Verdict = "exact"
	// Ambiguous: several links co-occur on every blocked path and no
	// clean path; the data cannot separate them.
	Ambiguous Verdict = "ambiguous"
	// Unlocalizable: no blocking was observed, or no single link is
	// consistent with all observations (e.g. At-Endpoint censorship hit
	// flows on disjoint paths).
	Unlocalizable Verdict = "unlocalizable"
)

// Candidate is one link consistent with every observation.
type Candidate struct {
	Link Link `json:"link"`
	// Score is the fraction of observations the link explains — 1.0 for
	// every strict candidate by construction, kept for comparability with
	// ranked-output consumers.
	Score float64 `json:"score"`
	// BlockedHits counts blocked observations whose path contains the
	// link (equal to the total for strict candidates).
	BlockedHits int `json:"blocked_hits"`
}

// HighConfidence mirrors centrace.HighConfidence: results at or above it
// are trustworthy on their own.
const HighConfidence = 0.7

// Result is the localizer's output.
type Result struct {
	// Candidates is the ranked consistent-link set: score descending,
	// then canonical link order. Empty when Unlocalizable.
	Candidates []Candidate `json:"candidates,omitempty"`
	Verdict    Verdict     `json:"verdict"`
	// Confidence is comparable to centrace.Confidence.Score: a [0,1]
	// blend of discrimination (how small the candidate set is) and
	// evidence volume on both sides of the boolean system.
	Confidence float64 `json:"confidence"`
	// BlockedObs/CleanObs count the observations behind the verdict.
	BlockedObs int `json:"blocked_obs"`
	CleanObs   int `json:"clean_obs"`
	// Epochs/Vantages count the distinct routing epochs and vantage
	// points observed — the diversity that makes the intersection sharp.
	Epochs   int `json:"epochs"`
	Vantages int `json:"vantages"`
}

// High reports whether the result clears the high-confidence bar.
func (r Result) High() bool { return r.Confidence >= HighConfidence }

// Top returns the best candidate link and true, or false when
// unlocalizable.
func (r Result) Top() (Link, bool) {
	if len(r.Candidates) == 0 {
		return Link{}, false
	}
	return r.Candidates[0].Link, true
}

// Contains reports whether a link is in the candidate set.
func (r Result) Contains(l Link) bool {
	for _, c := range r.Candidates {
		if c.Link == l {
			return true
		}
	}
	return false
}

// Solve runs boolean tomography over the observations. The result is a
// pure function of the observation multiset — input order never matters —
// and is deterministic (all map iteration is sorted).
func Solve(obs []Observation) Result {
	inBlocked := make(map[Link]int)
	inClean := make(map[Link]int)
	epochs := make(map[int]struct{})
	vantages := make(map[string]struct{})
	var res Result
	for _, o := range obs {
		epochs[o.Epoch] = struct{}{}
		vantages[o.Vantage] = struct{}{}
		// A path can contain a link once only, but be defensive about
		// duplicated entries: count each link once per observation.
		seen := make(map[Link]struct{}, len(o.Links))
		for _, l := range o.Links {
			l = MakeLink(l.A, l.B)
			if _, dup := seen[l]; dup {
				continue
			}
			seen[l] = struct{}{}
			if o.Blocked {
				inBlocked[l]++
			} else {
				inClean[l]++
			}
		}
		if o.Blocked {
			res.BlockedObs++
		} else {
			res.CleanObs++
		}
	}
	res.Epochs = len(epochs)
	res.Vantages = len(vantages)

	if res.BlockedObs == 0 {
		res.Verdict = Unlocalizable
		return res
	}
	links := make([]Link, 0, len(inBlocked))
	for l := range inBlocked {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].A != links[j].A {
			return links[i].A < links[j].A
		}
		return links[i].B < links[j].B
	})
	for _, l := range links {
		if inBlocked[l] == res.BlockedObs && inClean[l] == 0 {
			res.Candidates = append(res.Candidates, Candidate{
				Link:        l,
				Score:       1.0,
				BlockedHits: inBlocked[l],
			})
		}
	}
	switch len(res.Candidates) {
	case 0:
		res.Verdict = Unlocalizable
		return res
	case 1:
		res.Verdict = Exact
	default:
		res.Verdict = Ambiguous
	}
	res.Confidence = confidence(len(res.Candidates), res.BlockedObs, res.CleanObs)
	return res
}

// confidence blends discrimination with evidence volume. Weights are
// chosen so an exact verdict with ≥4 observations on each side scores
// 1.0, and a two-way ambiguity never clears HighConfidence no matter how
// much evidence backs it (0.65/2 + 0.175 + 0.175 = 0.675).
func confidence(candidates, blocked, clean int) float64 {
	disc := 1 / float64(candidates)
	return 0.65*disc + 0.175*evidence(blocked) + 0.175*evidence(clean)
}

// evidence saturates at 4 observations: beyond that, more probes of the
// same epochs add no information.
func evidence(n int) float64 {
	if n >= 4 {
		return 1
	}
	return float64(n) / 4
}

// Render formats a result as a one-line summary for reports.
func Render(r Result) string {
	top := "-"
	if l, ok := r.Top(); ok {
		top = l.String()
		if len(r.Candidates) > 1 {
			top = fmt.Sprintf("%s (+%d more)", top, len(r.Candidates)-1)
		}
	}
	return fmt.Sprintf("%s top=%s conf=%.2f obs=%dB/%dC epochs=%d vantages=%d",
		r.Verdict, top, r.Confidence, r.BlockedObs, r.CleanObs, r.Epochs, r.Vantages)
}
