package tomography

import (
	"math"
	"math/rand"
	"testing"
)

func obsOf(vantage string, epoch int, blocked bool, links ...Link) Observation {
	return Observation{Vantage: vantage, Endpoint: "s", Epoch: epoch, Blocked: blocked, Links: links}
}

func l(a, b string) Link { return MakeLink(a, b) }

// Golden case: two vantages whose blocked paths overlap in exactly one
// link pin the censor down.
func TestSolveExact(t *testing.T) {
	obs := []Observation{
		obsOf("c", 0, true, l("@c", "r1"), l("r1", "r2a"), l("r2a", "r3")),
		obsOf("c", 1, false, l("@c", "r1"), l("r1", "r2b"), l("r2b", "r3")),
		obsOf("va", 0, true, l("@va", "r2a"), l("r2a", "r3")),
		obsOf("va", 1, true, l("@va", "r2a"), l("r2a", "r3")),
	}
	r := Solve(obs)
	if r.Verdict != Exact {
		t.Fatalf("verdict = %s, want exact (%s)", r.Verdict, Render(r))
	}
	top, _ := r.Top()
	if top != l("r2a", "r3") {
		t.Fatalf("top candidate = %s, want r2a<->r3", top)
	}
	if r.BlockedObs != 3 || r.CleanObs != 1 || r.Epochs != 2 || r.Vantages != 2 {
		t.Fatalf("counts wrong: %s", Render(r))
	}
	// disc=1, blocked=3/4, clean=1/4 → 0.65 + 0.175*0.75 + 0.175*0.25
	want := 0.65 + 0.175*0.75 + 0.175*0.25
	if math.Abs(r.Confidence-want) > 1e-12 {
		t.Fatalf("confidence = %v, want %v", r.Confidence, want)
	}
	if !r.High() {
		t.Fatal("an exact verdict clears the high bar even on thin evidence (disc term alone is 0.65)")
	}
}

// With ≥4 observations on each side an exact verdict reaches 1.0.
func TestSolveExactSaturatedConfidence(t *testing.T) {
	var obs []Observation
	for i := 0; i < 4; i++ {
		obs = append(obs,
			obsOf("va", i, true, l("@va", "r2a"), l("r2a", "r3")),
			obsOf("c", i, false, l("@c", "r1"), l("r1", "r2b"), l("r2b", "r3")),
			obsOf("c", i, true, l("@c", "r1"), l("r1", "r2a"), l("r2a", "r3")),
		)
	}
	r := Solve(obs)
	if r.Verdict != Exact || r.Confidence != 1.0 {
		t.Fatalf("want exact conf=1.0, got %s", Render(r))
	}
	if !r.High() {
		t.Fatal("saturated exact result must be high confidence")
	}
}

// Golden case: a single vantage on a diamond cannot split co-occurring
// links; the truth is in the candidate set but confidence stays below the
// high bar.
func TestSolveAmbiguous(t *testing.T) {
	var obs []Observation
	for i := 0; i < 4; i++ {
		obs = append(obs,
			obsOf("c", i, true, l("@c", "r1"), l("r1", "r2a"), l("r2a", "r3")),
			obsOf("c", i, false, l("@c", "r1"), l("r1", "r2b"), l("r2b", "r3")),
		)
	}
	r := Solve(obs)
	if r.Verdict != Ambiguous {
		t.Fatalf("verdict = %s, want ambiguous (%s)", r.Verdict, Render(r))
	}
	if len(r.Candidates) != 2 || !r.Contains(l("r1", "r2a")) || !r.Contains(l("r2a", "r3")) {
		t.Fatalf("candidates = %v, want {r1<->r2a, r2a<->r3}", r.Candidates)
	}
	// Max-evidence two-way ambiguity: 0.65/2 + 0.175 + 0.175 = 0.675.
	if math.Abs(r.Confidence-0.675) > 1e-12 {
		t.Fatalf("confidence = %v, want 0.675", r.Confidence)
	}
	if r.High() {
		t.Fatal("an ambiguity must never clear the high-confidence bar")
	}
}

// Golden case: At-Endpoint blocking seen from vantages with disjoint
// paths leaves no link consistent with all observations.
func TestSolveUnlocalizableDisjointPaths(t *testing.T) {
	obs := []Observation{
		obsOf("va", 0, true, l("@va", "r2a"), l("r2a", "r3")),
		obsOf("vb", 0, true, l("@vb", "r2b"), l("r2b", "r3")),
	}
	r := Solve(obs)
	if r.Verdict != Unlocalizable || len(r.Candidates) != 0 {
		t.Fatalf("want unlocalizable with no candidates, got %s", Render(r))
	}
	if r.Confidence != 0 {
		t.Fatalf("confidence = %v, want 0", r.Confidence)
	}
}

// Golden case: no blocking observed at all.
func TestSolveUnlocalizableNoBlocking(t *testing.T) {
	r := Solve([]Observation{
		obsOf("c", 0, false, l("@c", "r1"), l("r1", "r2a"), l("r2a", "r3")),
	})
	if r.Verdict != Unlocalizable || r.Confidence != 0 || r.BlockedObs != 0 {
		t.Fatalf("want unlocalizable, got %s", Render(r))
	}
}

// A clean observation crossing the only shared blocked link exonerates
// it; nothing else survives.
func TestSolveCleanObservationExonerates(t *testing.T) {
	obs := []Observation{
		obsOf("c", 0, true, l("@c", "r1"), l("r1", "r2a")),
		obsOf("c", 1, false, l("@c", "r1"), l("r1", "r2a")),
	}
	r := Solve(obs)
	// @c-r1 and r1-r2a both appear clean, so no candidate remains.
	if r.Verdict != Unlocalizable {
		t.Fatalf("want unlocalizable, got %s", Render(r))
	}
}

// Solve is a pure function of the observation multiset: shuffling input
// order never changes the result.
func TestSolveOrderIndependent(t *testing.T) {
	obs := []Observation{
		obsOf("c", 0, true, l("@c", "r1"), l("r1", "r2a"), l("r2a", "r3")),
		obsOf("c", 1, false, l("@c", "r1"), l("r1", "r2b"), l("r2b", "r3")),
		obsOf("va", 0, true, l("@va", "r2a"), l("r2a", "r3")),
		obsOf("va", 2, true, l("@va", "r2a"), l("r2a", "r3")),
		obsOf("vb", 2, false, l("@vb", "r2b"), l("r2b", "r3")),
	}
	want := Render(Solve(obs))
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		rng.Shuffle(len(obs), func(i, j int) { obs[i], obs[j] = obs[j], obs[i] })
		if got := Render(Solve(obs)); got != want {
			t.Fatalf("trial %d: result changed with input order:\n got %s\nwant %s", trial, got, want)
		}
	}
}

// Links on observation paths are normalized, so reversed endpoints count
// as the same undirected link.
func TestSolveNormalizesLinks(t *testing.T) {
	obs := []Observation{
		obsOf("c", 0, true, Link{A: "r2a", B: "r1"}, Link{A: "r3", B: "r2a"}),
		obsOf("va", 0, true, Link{A: "r2a", B: "r3"}),
	}
	r := Solve(obs)
	if top, _ := r.Top(); r.Verdict != Exact || top != l("r2a", "r3") {
		t.Fatalf("want exact r2a<->r3, got %s", Render(r))
	}
}
