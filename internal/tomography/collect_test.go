package tomography_test

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"cendev/internal/endpoint"
	"cendev/internal/middlebox"
	"cendev/internal/parallel"
	"cendev/internal/routedyn"
	"cendev/internal/simnet"
	"cendev/internal/tomography"
	"cendev/internal/topology"
)

const (
	testDomain    = "blocked.example"
	controlDomain = "control.example"
)

// buildDiamond builds the canonical multi-path testbed: vantage c behind
// r1 with ECMP over r2a/r2b, direct vantages va/vb behind each branch
// router, and the server behind r3.
func buildDiamond(t *testing.T) (n *simnet.Network, c, va, vb, s *topology.Host) {
	t.Helper()
	g := topology.NewGraph()
	as := g.AddAS(1, "A", "US")
	r1 := g.AddRouter("r1", as)
	r2a := g.AddRouter("r2a", as)
	r2b := g.AddRouter("r2b", as)
	r3 := g.AddRouter("r3", as)
	g.Link("r1", "r2a")
	g.Link("r1", "r2b")
	g.Link("r2a", "r3")
	g.Link("r2b", "r3")
	c = g.AddHost("c", as, r1)
	va = g.AddHost("va", as, r2a)
	vb = g.AddHost("vb", as, r2b)
	s = g.AddHost("s", as, r3)
	n = simnet.New(g)
	n.RegisterServer("s", endpoint.NewServer(testDomain, controlDomain))
	return n, c, va, vb, s
}

// rehashEngine attaches a route-dynamics schedule that re-salts ECMP
// twice, giving the campaign three epochs of path diversity.
func rehashEngine(t *testing.T, n *simnet.Network, seed int64) {
	t.Helper()
	eng := routedyn.NewEngine(seed, n.Graph)
	eng.MustSchedule(routedyn.Event{At: 30 * time.Second, Kind: routedyn.Rehash})
	eng.MustSchedule(routedyn.Event{At: 60 * time.Second, Kind: routedyn.Rehash})
	n.SetRoutes(eng)
}

func campaign() tomography.CollectConfig {
	return tomography.CollectConfig{TestDomain: testDomain, ControlDomain: controlDomain}
}

// A censor on the r2a-r3 link is pinned exactly when a vantage behind r2a
// joins the campaign: its blocked paths overlap vantage c's only on the
// censored link itself.
func TestCollectExactLocalizesCensorLink(t *testing.T) {
	n, c, va, _, _ := buildDiamond(t)
	dev := middlebox.NewDevice("d", middlebox.VendorUnknownRST, []string{testDomain}, netip.Addr{})
	n.AttachDevice("r2a", "r3", dev)
	rehashEngine(t, n, 21)

	obs := tomography.Collect(n, []*topology.Host{c, va}, n.Graph.Host("s"), campaign())
	r := tomography.Solve(obs)
	if r.Verdict != tomography.Exact {
		t.Fatalf("verdict = %s, want exact (%s)", r.Verdict, tomography.Render(r))
	}
	if top, _ := r.Top(); top != tomography.MakeLink("r2a", "r3") {
		t.Fatalf("top = %s, want r2a<->r3 (%s)", top, tomography.Render(r))
	}
	if !r.High() {
		t.Fatalf("exact multi-vantage result should be high confidence: %s", tomography.Render(r))
	}
}

// From a single vantage the censored link and its forced successor
// co-occur on every blocked path: the verdict is ambiguous, contains the
// truth, and stays below the high-confidence bar.
func TestCollectAmbiguousSingleVantage(t *testing.T) {
	n, c, _, _, _ := buildDiamond(t)
	dev := middlebox.NewDevice("d", middlebox.VendorUnknownRST, []string{testDomain}, netip.Addr{})
	n.AttachDevice("r1", "r2a", dev)
	rehashEngine(t, n, 21)

	obs := tomography.Collect(n, []*topology.Host{c}, n.Graph.Host("s"), campaign())
	r := tomography.Solve(obs)
	if r.BlockedObs == 0 || r.CleanObs == 0 {
		t.Fatalf("campaign did not sample both branches: %s", tomography.Render(r))
	}
	if r.Verdict != tomography.Ambiguous {
		t.Fatalf("verdict = %s, want ambiguous (%s)", r.Verdict, tomography.Render(r))
	}
	if !r.Contains(tomography.MakeLink("r1", "r2a")) {
		t.Fatalf("candidate set lost the true link: %s", tomography.Render(r))
	}
	if r.High() {
		t.Fatalf("single-vantage ambiguity must not be high confidence: %s", tomography.Render(r))
	}
}

// At-Endpoint blocking seen from vantages with disjoint paths is
// unlocalizable: no single link is on every blocked path.
func TestCollectUnlocalizableEndpointGuard(t *testing.T) {
	n, _, va, vb, _ := buildDiamond(t)
	guard := middlebox.NewDevice("g", middlebox.VendorUnknownDrop, []string{testDomain}, netip.Addr{})
	n.AttachGuard("s", guard)
	rehashEngine(t, n, 21)

	obs := tomography.Collect(n, []*topology.Host{va, vb}, n.Graph.Host("s"), campaign())
	r := tomography.Solve(obs)
	if r.BlockedObs == 0 {
		t.Fatalf("guard never fired: %s", tomography.Render(r))
	}
	if r.Verdict != tomography.Unlocalizable || len(r.Candidates) != 0 {
		t.Fatalf("want unlocalizable with no candidates, got %s", tomography.Render(r))
	}
}

// Without a route-dynamics engine Collect degrades to a single canonical
// epoch and still produces observations.
func TestCollectWithoutEngine(t *testing.T) {
	n, c, va, _, _ := buildDiamond(t)
	dev := middlebox.NewDevice("d", middlebox.VendorUnknownRST, []string{testDomain}, netip.Addr{})
	n.AttachDevice("r2a", "r3", dev)

	obs := tomography.Collect(n, []*topology.Host{c, va}, n.Graph.Host("s"), campaign())
	if len(obs) == 0 {
		t.Fatal("no observations without an engine")
	}
	for _, o := range obs {
		if o.Epoch != 0 {
			t.Fatalf("engine-less observation in epoch %d, want 0", o.Epoch)
		}
	}
	r := tomography.Solve(obs)
	if r.Verdict != tomography.Exact {
		t.Fatalf("verdict = %s, want exact (%s)", r.Verdict, tomography.Render(r))
	}
}

// The full campaign — build, collect, solve — is byte-identical at any
// worker count: cells are claimed dynamically but results are indexed by
// cell, and every cell builds its own world.
func TestCollectDeterministicAcrossWorkers(t *testing.T) {
	seeds := []int64{3, 7, 21, 40, 55, 101}
	run := func(workers int) string {
		results := make([]string, len(seeds))
		parallel.ForEach(len(seeds), workers, func(_, i int) {
			n, c, va, _, _ := buildDiamond(t)
			dev := middlebox.NewDevice("d", middlebox.VendorUnknownRST, []string{testDomain}, netip.Addr{})
			n.AttachDevice("r1", "r2a", dev)
			rehashEngine(t, n, seeds[i])
			obs := tomography.Collect(n, []*topology.Host{c, va}, n.Graph.Host("s"), campaign())
			results[i] = fmt.Sprintf("seed=%d %s", seeds[i], tomography.Render(tomography.Solve(obs)))
		})
		return strings.Join(results, "\n")
	}
	one := run(1)
	four := run(4)
	if one != four {
		t.Fatalf("-workers divergence:\nworkers=1:\n%s\nworkers=4:\n%s", one, four)
	}
	if !strings.Contains(one, "exact") {
		t.Fatalf("expected at least one exact cell:\n%s", one)
	}
}
