package middlebox

import (
	"net/netip"
	"testing"

	"cendev/internal/dnsgram"
	"cendev/internal/netem"
)

func dnsProbe(name string) *netem.Packet {
	q := dnsgram.NewQuery(42, name)
	return netem.NewUDPPacket(clientAddr, endpointAddr, 40000, 53, q.Serialize())
}

func TestDNSInjectorForgesAnswer(t *testing.T) {
	d := NewDevice("dns", VendorDNSInjector, []string{blockedDomain}, netip.Addr{})
	v := d.Inspect(dnsProbe(blockedDomain), endpointAddr, 0)
	if !v.Triggered {
		t.Fatal("blocked QNAME should trigger")
	}
	if v.DropOriginal {
		t.Error("on-path injector must not drop the original query")
	}
	if len(v.Injected) != 1 {
		t.Fatalf("injected %d packets, want 1", len(v.Injected))
	}
	inj := v.Injected[0]
	if inj.UDP == nil || inj.UDP.SrcPort != 53 || inj.UDP.DstPort != 40000 {
		t.Fatalf("injected transport = %+v", inj.UDP)
	}
	if inj.IP.Src != endpointAddr {
		t.Errorf("injected src = %s, want spoofed resolver", inj.IP.Src)
	}
	resp, err := dnsgram.ParseResponse(inj.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 42 {
		t.Errorf("response ID = %d, want copied query ID", resp.ID)
	}
	if len(resp.Answers) != 1 || resp.Answers[0] != BogusAddrs[0] {
		t.Errorf("answers = %v, want default bogus address", resp.Answers)
	}
}

func TestDNSInjectorCustomBogusA(t *testing.T) {
	d := NewDevice("dns", VendorDNSInjector, []string{blockedDomain}, netip.Addr{})
	d.BogusA = netip.MustParseAddr("198.51.100.6")
	v := d.Inspect(dnsProbe(blockedDomain), endpointAddr, 0)
	resp, err := dnsgram.ParseResponse(v.Injected[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Answers[0] != d.BogusA {
		t.Errorf("answer = %s, want configured bogus address", resp.Answers[0])
	}
}

func TestDNSInjectorIgnoresUnblockedAndNonDNS(t *testing.T) {
	d := NewDevice("dns", VendorDNSInjector, []string{blockedDomain}, netip.Addr{})
	if v := d.Inspect(dnsProbe("www.open.example"), endpointAddr, 0); v.Triggered {
		t.Error("unblocked QNAME should not trigger")
	}
	// DNS-only device ignores HTTP entirely.
	if v := d.Inspect(httpProbe(blockedDomain), endpointAddr, 0); v.Triggered {
		t.Error("DNS-only device should ignore TCP traffic")
	}
	// Non-53 UDP ignored.
	q := dnsgram.NewQuery(1, blockedDomain)
	pkt := netem.NewUDPPacket(clientAddr, endpointAddr, 40000, 5353, q.Serialize())
	if v := d.Inspect(pkt, endpointAddr, 0); v.Triggered {
		t.Error("non-53 UDP should not trigger")
	}
	// Garbage payload ignored.
	garbage := netem.NewUDPPacket(clientAddr, endpointAddr, 40000, 53, []byte("xx"))
	if v := d.Inspect(garbage, endpointAddr, 0); v.Triggered {
		t.Error("garbage payload should not trigger")
	}
}

func TestDNSDropDevice(t *testing.T) {
	// A regular drop device configured for DNS (rules apply to QNAMEs too).
	d := NewDevice("d", VendorUnknownDrop, []string{blockedDomain}, netip.Addr{})
	v := d.Inspect(dnsProbe(blockedDomain), endpointAddr, 0)
	if !v.Triggered || !v.DropOriginal || v.Injected != nil {
		t.Errorf("verdict = %+v, want in-path DNS drop", v)
	}
}

func TestDNSResidualState(t *testing.T) {
	d := NewDevice("d", VendorUnknownDrop, []string{blockedDomain}, netip.Addr{})
	d.Inspect(dnsProbe(blockedDomain), endpointAddr, 0)
	v := d.Inspect(dnsProbe("www.open.example"), endpointAddr, 1e9)
	if !v.Triggered || !v.Residual {
		t.Errorf("verdict = %+v, want residual DNS drop", v)
	}
}

func TestDNSCopyTTL(t *testing.T) {
	d := NewDevice("dns", VendorDNSInjector, []string{blockedDomain}, netip.Addr{})
	d.CopyTTL = true
	probe := dnsProbe(blockedDomain)
	probe.IP.TTL = 3
	v := d.Inspect(probe, endpointAddr, 0)
	if v.Injected[0].IP.TTL != 3 {
		t.Errorf("injected TTL = %d, want copied 3", v.Injected[0].IP.TTL)
	}
}
