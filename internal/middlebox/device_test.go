package middlebox

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"cendev/internal/httpgram"
	"cendev/internal/netem"
	"cendev/internal/tlsgram"
)

var (
	clientAddr   = netip.MustParseAddr("10.1.0.1")
	endpointAddr = netip.MustParseAddr("10.2.0.1")
	deviceAddr   = netip.MustParseAddr("10.3.0.1")
)

const blockedDomain = "www.blocked.example"

// httpProbe builds a client→endpoint packet carrying a canonical GET for
// the given hostname.
func httpProbe(host string) *netem.Packet {
	return netem.NewTCPPacket(clientAddr, endpointAddr, 40000, 80,
		netem.TCPPsh|netem.TCPAck, 100, 1, httpgram.NewRequest(host).Render())
}

// tlsProbe builds a client→endpoint packet carrying a Client Hello for the
// given server name.
func tlsProbe(sni string) *netem.Packet {
	return netem.NewTCPPacket(clientAddr, endpointAddr, 40000, 443,
		netem.TCPPsh|netem.TCPAck, 100, 1, tlsgram.NewClientHello(sni).Serialize())
}

func TestRuleSetModes(t *testing.T) {
	cases := []struct {
		mode    MatchMode
		entry   string
		host    string
		matches bool
	}{
		{MatchExact, "www.blocked.example", "www.blocked.example", true},
		{MatchExact, "www.blocked.example", "m.blocked.example", false},
		{MatchExact, "www.blocked.example", "**www.blocked.example", false},
		{MatchSuffix, "www.blocked.example", "**www.blocked.example", true},
		{MatchSuffix, "www.blocked.example", "www.blocked.example**", false},
		{MatchSuffix, "blocked.example", "m.blocked.example", true},
		{MatchSuffix, "blocked.example", "www.blocked.net", false},
		{MatchContains, "blocked.example", "**www.blocked.example**", true},
		{MatchContains, "blocked.example", "www.blocked.net", false},
		{MatchKeyword, "www.blocked.example", "www.blocked.net", true},
		{MatchKeyword, "www.blocked.example", "www.open.example", false},
	}
	for _, tc := range cases {
		rs := RuleSet{Mode: tc.mode, Domains: []string{tc.entry}}
		if got := rs.Matches(tc.host); got != tc.matches {
			t.Errorf("mode=%s entry=%q host=%q: Matches = %v, want %v",
				tc.mode, tc.entry, tc.host, got, tc.matches)
		}
	}
}

func TestRuleSetCaseInsensitive(t *testing.T) {
	rs := RuleSet{Mode: MatchExact, Domains: []string{"www.Blocked.Example"}, CaseInsensitive: true}
	if !rs.Matches("WWW.BLOCKED.EXAMPLE") {
		t.Error("case-insensitive rule should match upper-cased host")
	}
	strict := RuleSet{Mode: MatchExact, Domains: []string{"www.blocked.example"}}
	if strict.Matches("WWW.BLOCKED.EXAMPLE") {
		t.Error("case-sensitive rule should not match upper-cased host")
	}
	if rs.Matches("") {
		t.Error("empty host should never match")
	}
}

func TestDropDeviceTriggersOnHTTP(t *testing.T) {
	d := NewDevice("d1", VendorCisco, []string{blockedDomain}, deviceAddr)
	v := d.Inspect(httpProbe(blockedDomain), endpointAddr, 0)
	if !v.Triggered || !v.DropOriginal || v.Injected != nil {
		t.Errorf("verdict = %+v, want triggered drop without injection", v)
	}
	d.ResetState() // clear residual flow state before the control probe
	v2 := d.Inspect(httpProbe("www.open.example"), endpointAddr, 0)
	if v2.Triggered {
		t.Error("unblocked domain should not trigger")
	}
}

func TestRSTDeviceInjects(t *testing.T) {
	d := NewDevice("d1", VendorDDoSGuard, []string{blockedDomain}, deviceAddr)
	probe := httpProbe(blockedDomain)
	v := d.Inspect(probe, endpointAddr, 0)
	if !v.Triggered || len(v.Injected) != 1 {
		t.Fatalf("verdict = %+v, want one injected packet", v)
	}
	inj := v.Injected[0]
	if inj.TCP.Flags&netem.TCPRst == 0 {
		t.Errorf("injected flags = %s, want RST", inj.TCP.Flags)
	}
	if inj.IP.Src != endpointAddr {
		t.Errorf("injected src = %s, want spoofed endpoint %s", inj.IP.Src, endpointAddr)
	}
	if inj.IP.Dst != clientAddr {
		t.Errorf("injected dst = %s, want client %s", inj.IP.Dst, clientAddr)
	}
	if inj.TCP.SrcPort != 80 || inj.TCP.DstPort != 40000 {
		t.Errorf("injected ports = %d>%d", inj.TCP.SrcPort, inj.TCP.DstPort)
	}
}

func TestBlockpageDeviceInjectsPageAndFIN(t *testing.T) {
	d := NewDevice("d1", VendorFortinet, []string{blockedDomain}, deviceAddr)
	v := d.Inspect(httpProbe(blockedDomain), endpointAddr, 0)
	if len(v.Injected) != 2 {
		t.Fatalf("injected %d packets, want 2 (page + FIN)", len(v.Injected))
	}
	page := string(v.Injected[0].Payload)
	if !strings.Contains(page, "FortiGuard") {
		t.Errorf("blockpage missing vendor marker: %q", page)
	}
	if v.Injected[1].TCP.Flags&netem.TCPFin == 0 {
		t.Error("second injected packet should carry FIN")
	}
}

func TestFINDeviceInjects(t *testing.T) {
	d := NewDevice("d1", VendorDDoSGuard, []string{blockedDomain}, deviceAddr)
	d.Action = ActionFIN
	v := d.Inspect(httpProbe(blockedDomain), endpointAddr, 0)
	if len(v.Injected) != 1 || v.Injected[0].TCP.Flags&netem.TCPFin == 0 {
		t.Fatalf("verdict = %+v, want single FIN injection", v)
	}
}

func TestOnPathDeviceForwardsOriginal(t *testing.T) {
	d := NewDevice("d1", VendorUnknownRST, []string{blockedDomain}, netip.Addr{})
	v := d.Inspect(httpProbe(blockedDomain), endpointAddr, 0)
	if !v.Triggered {
		t.Fatal("on-path device should trigger")
	}
	if v.DropOriginal {
		t.Error("on-path device cannot drop the original packet")
	}
	if len(v.Injected) != 1 {
		t.Errorf("injected %d packets, want 1", len(v.Injected))
	}
}

func TestTLSSNITrigger(t *testing.T) {
	d := NewDevice("d1", VendorKerio, []string{blockedDomain}, deviceAddr)
	if v := d.Inspect(tlsProbe(blockedDomain), endpointAddr, 0); !v.Triggered {
		t.Error("Client Hello with blocked SNI should trigger")
	}
	d.ResetState() // clear residual flow state before the control probe
	if v := d.Inspect(tlsProbe("www.open.example"), endpointAddr, 0); v.Triggered {
		t.Error("Client Hello with open SNI should not trigger")
	}
}

func TestTLSVersionQuirkEvasion(t *testing.T) {
	d := NewDevice("d1", VendorPaloAlto, []string{blockedDomain}, deviceAddr)
	// Palo Alto profile parses version ranges intersecting 1.1–1.2. The
	// canonical hello offers 1.2–1.3, which intersects, so it triggers.
	ch := tlsgram.NewClientHello(blockedDomain)
	probe := netem.NewTCPPacket(clientAddr, endpointAddr, 40000, 443,
		netem.TCPPsh|netem.TCPAck, 100, 1, ch.Serialize())
	if v := d.Inspect(probe, endpointAddr, 0); !v.Triggered {
		t.Error("canonical 1.2–1.3 hello should trigger")
	}
	d.ResetState()
	// A pure TLS 1.3 hello falls outside the parser's window and evades.
	ch13 := tlsgram.NewClientHello(blockedDomain)
	ch13.SetSupportedVersions(tlsgram.VersionTLS13, tlsgram.VersionTLS13)
	probe13 := netem.NewTCPPacket(clientAddr, endpointAddr, 40000, 443,
		netem.TCPPsh|netem.TCPAck, 100, 1, ch13.Serialize())
	if v := d.Inspect(probe13, endpointAddr, 0); v.Triggered {
		t.Error("pure TLS 1.3 hello should evade a 1.2-max parser")
	}
	// A pure TLS 1.0 hello falls below the window and evades too.
	ch10 := tlsgram.NewClientHello(blockedDomain)
	ch10.SetSupportedVersions(tlsgram.VersionTLS10, tlsgram.VersionTLS10)
	probe10 := netem.NewTCPPacket(clientAddr, endpointAddr, 40000, 443,
		netem.TCPPsh|netem.TCPAck, 100, 1, ch10.Serialize())
	if v := d.Inspect(probe10, endpointAddr, 0); v.Triggered {
		t.Error("pure TLS 1.0 hello should evade a 1.1-min parser")
	}
}

func TestTLSCipherSuiteQuirk(t *testing.T) {
	d := NewDevice("d1", VendorKerio, []string{blockedDomain}, deviceAddr)
	d.Quirks.TLS.RequireKnownSuite = map[uint16]bool{tlsgram.TLS_AES_128_GCM_SHA256: true}
	legacy := tlsgram.NewClientHello(blockedDomain)
	legacy.CipherSuites = []uint16{tlsgram.TLS_RSA_WITH_RC4_128_SHA}
	probe := netem.NewTCPPacket(clientAddr, endpointAddr, 40000, 443,
		netem.TCPPsh|netem.TCPAck, 100, 1, legacy.Serialize())
	if v := d.Inspect(probe, endpointAddr, 0); v.Triggered {
		t.Error("RC4-only hello should evade a device requiring a known suite")
	}
}

func TestMethodAllowlistEvasion(t *testing.T) {
	d := NewDevice("d1", VendorCisco, []string{blockedDomain}, deviceAddr)
	req := httpgram.NewRequest(blockedDomain)
	req.Method = "PATCH"
	probe := netem.NewTCPPacket(clientAddr, endpointAddr, 40000, 80,
		netem.TCPPsh|netem.TCPAck, 100, 1, req.Render())
	if v := d.Inspect(probe, endpointAddr, 0); v.Triggered {
		t.Error("PATCH should evade a device triggering only on GET/POST/PUT/HEAD")
	}
}

func TestSubstringScannerIgnoresMethod(t *testing.T) {
	d := NewDevice("d1", VendorFortinet, []string{blockedDomain}, deviceAddr)
	req := httpgram.NewRequest(blockedDomain)
	req.Method = ""
	probe := netem.NewTCPPacket(clientAddr, endpointAddr, 40000, 80,
		netem.TCPPsh|netem.TCPAck, 100, 1, req.Render())
	if v := d.Inspect(probe, endpointAddr, 0); !v.Triggered {
		t.Error("substring-scanning device should trigger regardless of method")
	}
}

func TestPathSensitivity(t *testing.T) {
	d := NewDevice("d1", VendorKerio, []string{blockedDomain}, deviceAddr)
	req := httpgram.NewRequest(blockedDomain)
	req.Path = "?"
	probe := netem.NewTCPPacket(clientAddr, endpointAddr, 40000, 80,
		netem.TCPPsh|netem.TCPAck, 100, 1, req.Render())
	if v := d.Inspect(probe, endpointAddr, 0); v.Triggered {
		t.Error("non-root path should evade a path-sensitive device")
	}
}

func TestCopyTTLInjection(t *testing.T) {
	d := NewDevice("d1", VendorUnknownCopyTTL, []string{blockedDomain}, netip.Addr{})
	probe := httpProbe(blockedDomain)
	probe.IP.TTL = 5
	probe.IP.ID = 777
	v := d.Inspect(probe, endpointAddr, 0)
	if len(v.Injected) != 1 {
		t.Fatalf("injected %d packets, want 1", len(v.Injected))
	}
	if v.Injected[0].IP.TTL != 5 {
		t.Errorf("injected TTL = %d, want copied 5", v.Injected[0].IP.TTL)
	}
	if v.Injected[0].IP.ID != 777 {
		t.Errorf("injected IP ID = %d, want copied 777", v.Injected[0].IP.ID)
	}
}

func TestResidualBlocking(t *testing.T) {
	d := NewDevice("d1", VendorCisco, []string{blockedDomain}, deviceAddr)
	if v := d.Inspect(httpProbe(blockedDomain), endpointAddr, 0); !v.Triggered {
		t.Fatal("first probe should trigger")
	}
	// An innocuous request between the same hosts inside the window is
	// dropped by residual state.
	v := d.Inspect(httpProbe("www.open.example"), endpointAddr, 10*time.Second)
	if !v.Triggered || !v.Residual {
		t.Errorf("within residual window: verdict = %+v, want residual trigger", v)
	}
	// After the window expires, the innocuous request passes.
	v2 := d.Inspect(httpProbe("www.open.example"), endpointAddr, 10*time.Minute)
	if v2.Triggered {
		t.Errorf("after residual window: verdict = %+v, want pass", v2)
	}
}

func TestResetStateClearsResidual(t *testing.T) {
	d := NewDevice("d1", VendorCisco, []string{blockedDomain}, deviceAddr)
	d.Inspect(httpProbe(blockedDomain), endpointAddr, 0)
	d.ResetState()
	if v := d.Inspect(httpProbe("www.open.example"), endpointAddr, time.Second); v.Triggered {
		t.Error("ResetState should clear residual blocking")
	}
}

func TestMaxInjectsPerFlow(t *testing.T) {
	d := NewDevice("d1", VendorUnknownRST, []string{blockedDomain}, netip.Addr{})
	d.ResidualWindow = 0 // isolate the injection cap
	d.MaxInjectsPerFlow = 2
	for i := 0; i < 2; i++ {
		if v := d.Inspect(httpProbe(blockedDomain), endpointAddr, 0); len(v.Injected) != 1 {
			t.Fatalf("probe %d: injected %d, want 1", i, len(v.Injected))
		}
	}
	v := d.Inspect(httpProbe(blockedDomain), endpointAddr, 0)
	if !v.Triggered || len(v.Injected) != 0 {
		t.Errorf("after cap: verdict = %+v, want trigger without injection", v)
	}
}

func TestNonTCPPacketsIgnored(t *testing.T) {
	d := NewDevice("d1", VendorCisco, []string{blockedDomain}, deviceAddr)
	icmp := &netem.Packet{
		IP:   netem.IPv4{Src: clientAddr, Dst: endpointAddr, TTL: 64, Protocol: netem.ProtoICMP},
		ICMP: &netem.ICMP{Type: netem.ICMPEcho},
	}
	if v := d.Inspect(icmp, endpointAddr, 0); v.Triggered {
		t.Error("ICMP packets should not trigger")
	}
}

func TestEmptyPayloadIgnored(t *testing.T) {
	d := NewDevice("d1", VendorCisco, []string{blockedDomain}, deviceAddr)
	syn := netem.NewTCPPacket(clientAddr, endpointAddr, 40000, 80, netem.TCPSyn, 0, 0, nil)
	if v := d.Inspect(syn, endpointAddr, 0); v.Triggered {
		t.Error("SYN without payload should not trigger")
	}
}

func TestNewDeviceRegistrableRules(t *testing.T) {
	d := NewDevice("d1", VendorFortinet, []string{"www.blocked.example"}, deviceAddr)
	if got := d.Rules.Domains[0]; got != "blocked.example" {
		t.Errorf("Fortinet rule entry = %q, want registrable domain", got)
	}
	d2 := NewDevice("d2", VendorCisco, []string{"www.blocked.example"}, deviceAddr)
	if got := d2.Rules.Domains[0]; got != "www.blocked.example" {
		t.Errorf("Cisco rule entry = %q, want full hostname", got)
	}
}

func TestNewDeviceUnknownVendorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDevice with unknown vendor should panic")
		}
	}()
	NewDevice("d1", Vendor("NoSuchVendor"), nil, deviceAddr)
}

func TestServicesOnlyWithAddress(t *testing.T) {
	with := NewDevice("d1", VendorFortinet, nil, deviceAddr)
	if len(with.Services) == 0 {
		t.Error("addressed Fortinet device should expose services")
	}
	without := NewDevice("d2", VendorFortinet, nil, netip.Addr{})
	if len(without.Services) != 0 {
		t.Error("address-less device should expose no services")
	}
}

func TestAllProfilesInstantiable(t *testing.T) {
	for vendor := range Profiles {
		d := NewDevice("x", vendor, []string{blockedDomain}, deviceAddr)
		if d.Vendor != vendor {
			t.Errorf("vendor %s: instantiated as %s", vendor, d.Vendor)
		}
		if d.DNSOnly {
			continue // DNS-only devices are exercised in dns_test.go
		}
		// Every profile must trigger on a canonical GET for its rule.
		v := d.Inspect(httpProbe(blockedDomain), endpointAddr, 0)
		if !v.Triggered {
			t.Errorf("vendor %s: canonical GET did not trigger", vendor)
		}
		d.ResetState()
		// And on a canonical Client Hello, except parsers with narrow
		// version ranges (checked separately above).
		if d.Quirks.TLS.ParseVersionMax == 0 {
			if v := d.Inspect(tlsProbe(blockedDomain), endpointAddr, 0); !v.Triggered {
				t.Errorf("vendor %s: canonical Client Hello did not trigger", vendor)
			}
		}
	}
}

func TestStringers(t *testing.T) {
	d := NewDevice("dev-9", VendorCisco, nil, deviceAddr)
	if s := d.String(); !strings.Contains(s, "Cisco") || !strings.Contains(s, "in-path") {
		t.Errorf("Device.String() = %q", s)
	}
	if ActionBlockpage.String() != "BLOCKPAGE" || ActionDrop.String() != "DROP" {
		t.Error("Action.String() broken")
	}
	if OnPath.String() != "on-path" {
		t.Error("Placement.String() broken")
	}
	if MatchKeyword.String() != "keyword" {
		t.Error("MatchMode.String() broken")
	}
}

func TestRegistrableHelper(t *testing.T) {
	cases := map[string]string{
		"www.example.com":   "example.com",
		"example.com":       "example.com",
		"a.b.c.example.org": "example.org",
		"localhost":         "localhost",
	}
	for in, want := range cases {
		if got := registrable(in); got != want {
			t.Errorf("registrable(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestQuickMatchModeMonotonicity checks the containment hierarchy of the
// match modes: an exact match is also a suffix match, and a suffix match
// is also a contains match, for any host/entry pair.
func TestQuickMatchModeMonotonicity(t *testing.T) {
	f := func(rawHost, rawEntry []byte) bool {
		host := sanitizeDomain(rawHost)
		entry := sanitizeDomain(rawEntry)
		if host == "" || entry == "" {
			return true
		}
		exact := RuleSet{Mode: MatchExact, Domains: []string{entry}}
		suffix := RuleSet{Mode: MatchSuffix, Domains: []string{entry}}
		contains := RuleSet{Mode: MatchContains, Domains: []string{entry}}
		if exact.Matches(host) && !suffix.Matches(host) {
			return false
		}
		if suffix.Matches(host) && !contains.Matches(host) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickInspectDeterministic verifies that inspecting the same packet
// twice (with state reset in between) yields identical verdicts.
func TestQuickInspectDeterministic(t *testing.T) {
	f := func(rawHost []byte, method uint8) bool {
		host := sanitizeDomain(rawHost)
		if host == "" {
			return true
		}
		methods := []string{"GET", "POST", "PUT", "PATCH", "XXXX", ""}
		d := NewDevice("d", VendorCisco, []string{blockedDomain}, deviceAddr)
		req := httpgram.NewRequest(host)
		req.Method = methods[int(method)%len(methods)]
		probe := netem.NewTCPPacket(clientAddr, endpointAddr, 40000, 80,
			netem.TCPPsh|netem.TCPAck, 100, 1, req.Render())
		v1 := d.Inspect(probe, endpointAddr, 0)
		d.ResetState()
		v2 := d.Inspect(probe, endpointAddr, 0)
		return v1.Triggered == v2.Triggered && v1.DropOriginal == v2.DropOriginal &&
			len(v1.Injected) == len(v2.Injected)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func sanitizeDomain(raw []byte) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz0123456789-."
	b := make([]byte, 0, len(raw))
	for _, c := range raw {
		b = append(b, alpha[int(c)%len(alpha)])
	}
	return strings.Trim(string(b), ".-")
}

func TestThrottleAction(t *testing.T) {
	d := NewDevice("d", VendorUnknownDrop, []string{blockedDomain}, deviceAddr)
	d.Action = ActionThrottle
	d.ResidualWindow = 0
	v := d.Inspect(httpProbe(blockedDomain), endpointAddr, 0)
	if !v.Triggered || v.DropOriginal || v.Injected != nil {
		t.Fatalf("verdict = %+v, want throttle without drop or injection", v)
	}
	if v.ThrottleDelay <= 0 {
		t.Error("ThrottleDelay missing")
	}
	d.ThrottleDelay = 2 * time.Second
	v2 := d.Inspect(httpProbe(blockedDomain), endpointAddr, 0)
	if v2.ThrottleDelay != 2*time.Second {
		t.Errorf("configured delay = %v", v2.ThrottleDelay)
	}
	if v3 := d.Inspect(httpProbe("www.open.example"), endpointAddr, 0); v3.Triggered {
		t.Error("open domain should not be throttled")
	}
	if ActionThrottle.String() != "THROTTLE" {
		t.Error("stringer broken")
	}
}

func TestReassemblingDeviceCatchesSplitTrigger(t *testing.T) {
	d := NewDevice("d", VendorFortinet, []string{blockedDomain}, deviceAddr)
	d.ResidualWindow = 0
	req := httpgram.NewRequest(blockedDomain).Render()
	cut := len(req) - 10
	seg1 := netem.NewTCPPacket(clientAddr, endpointAddr, 40000, 80, netem.TCPPsh|netem.TCPAck, 1, 1, req[:cut])
	seg2 := netem.NewTCPPacket(clientAddr, endpointAddr, 40000, 80, netem.TCPPsh|netem.TCPAck, 1+uint32(cut), 1, req[cut:])
	if v := d.Inspect(seg1, endpointAddr, 0); v.Triggered {
		t.Fatal("first segment alone should not trigger")
	}
	if v := d.Inspect(seg2, endpointAddr, 0); !v.Triggered {
		t.Error("reassembled stream should trigger")
	}
	// Per-packet engine (Cisco) misses both segments.
	c := NewDevice("c", VendorCisco, []string{blockedDomain}, deviceAddr)
	c.ResidualWindow = 0
	if v := c.Inspect(seg1, endpointAddr, 0); v.Triggered {
		t.Error("per-packet engine triggered on partial segment")
	}
	if v := c.Inspect(seg2, endpointAddr, 0); v.Triggered {
		t.Error("per-packet engine triggered on partial segment 2")
	}
}

func TestStreamBufferBounded(t *testing.T) {
	d := NewDevice("d", VendorFortinet, nil, deviceAddr)
	d.ResidualWindow = 0
	big := make([]byte, 3000)
	for i := 0; i < 10; i++ {
		pkt := netem.NewTCPPacket(clientAddr, endpointAddr, 40000, 80, netem.TCPPsh|netem.TCPAck, uint32(i), 1, big)
		d.Inspect(pkt, endpointAddr, 0)
	}
	// The buffer must stay bounded (8 KiB).
	for _, buf := range d.streams {
		if len(buf) > maxStreamBuffer {
			t.Errorf("stream buffer grew to %d", len(buf))
		}
	}
	d.ResetState()
	if d.streams != nil {
		t.Error("ResetState should clear stream buffers")
	}
}

func TestPersonalityDefaults(t *testing.T) {
	forti := NewDevice("f", VendorFortinet, nil, deviceAddr)
	if forti.Personality.SYNACKTTL != 64 || forti.Personality.SYNACKWindow != 5840 {
		t.Errorf("Fortinet personality = %+v", forti.Personality)
	}
	cisco := NewDevice("c", VendorCisco, nil, deviceAddr)
	if cisco.Personality.SYNACKTTL != 255 {
		t.Errorf("Cisco personality = %+v", cisco.Personality)
	}
	if DefaultHostPersonality.SYNACKWindow == 0 {
		t.Error("default host personality unset")
	}
}
