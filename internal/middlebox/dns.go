package middlebox

import (
	"net/netip"
	"time"

	"cendev/internal/dnsgram"
	"cendev/internal/netem"
)

// DNS-injection support: the protocol extension the paper names as future
// work (§8: "devices that perform DNS packet injection"). A DNS-capable
// device extracts the QNAME from UDP port-53 queries, matches it against
// its rules, and either drops the query or injects a spoofed response
// carrying a bogus A record — the classic on-path injector design.

// BogusAddrs are well-known injection answer addresses used by deployed
// DNS censorship systems; the blockpage package's MatchDNSAnswer consults
// the same list.
var BogusAddrs = []netip.Addr{
	netip.MustParseAddr("10.10.34.34"),  // Iran-style injection answer
	netip.MustParseAddr("198.51.100.6"), // sinkhole
	netip.MustParseAddr("127.0.0.1"),    // localhost redirection
}

// inspectDNS handles UDP packets. It mirrors Inspect's TCP flow but builds
// DNS responses instead of TCP injections.
func (d *Device) inspectDNS(pkt *netem.Packet, endpoint netip.Addr, now time.Duration) Verdict {
	if pkt.UDP == nil || pkt.UDP.DstPort != 53 {
		return Verdict{}
	}
	// Residual state applies to DNS flows too.
	if d.ResidualWindow > 0 {
		if until, ok := d.residual[normalizePair(pkt.IP.Src, pkt.IP.Dst)]; ok {
			if now < until {
				return Verdict{Triggered: true, DropOriginal: d.Placement == InPath, Residual: true}
			}
			delete(d.residual, normalizePair(pkt.IP.Src, pkt.IP.Dst))
		}
	}
	q, err := dnsgram.ParseQuery(pkt.Payload)
	if err != nil || !d.Rules.Matches(q.Name) {
		return Verdict{}
	}
	if d.ResidualWindow > 0 {
		if d.residual == nil {
			d.residual = make(map[hostPair]time.Duration)
		}
		d.residual[normalizePair(pkt.IP.Src, pkt.IP.Dst)] = now + d.ResidualWindow
	}
	v := Verdict{Triggered: true, DropOriginal: d.Placement == InPath}
	if d.Action == ActionDrop {
		return v
	}
	bogus := d.BogusA
	if !bogus.IsValid() {
		bogus = BogusAddrs[0]
	}
	resp := dnsgram.Answer(q, bogus)
	ttl := d.Inject.TTL
	if ttl == 0 {
		ttl = 64
	}
	ipid := d.Inject.IPID
	if d.CopyTTL {
		ttl = pkt.IP.TTL
		ipid = pkt.IP.ID
	}
	inj := &netem.Packet{
		IP: netem.IPv4{
			TTL: ttl, ID: ipid, Flags: d.Inject.IPFlags,
			Src: endpoint, Dst: pkt.IP.Src, Protocol: netem.ProtoUDP,
		},
		UDP:     &netem.UDP{SrcPort: 53, DstPort: pkt.UDP.SrcPort},
		Payload: resp.Serialize(),
	}
	v.Injected = []*netem.Packet{inj}
	return v
}
