// Package middlebox models censorship devices: the rules they match, the
// parsers they use (with per-vendor quirks that CenFuzz strategies exploit),
// the actions they take, and the wire-level fingerprints of the packets they
// inject. Devices are placed in-path (can drop and modify traffic at line
// rate) or on-path (see a mirror of traffic and can only inject), matching
// the taxonomy in §4.1 of the paper.
package middlebox

import (
	"bytes"
	"fmt"
	"net/netip"
	"strings"
	"time"

	"cendev/internal/httpgram"
	"cendev/internal/netem"
	"cendev/internal/tlsgram"
)

// Placement is where the device sits relative to the traffic it censors.
type Placement int

// Device placements (§4.1).
const (
	// InPath devices sit in the network link, operate at line rate, and can
	// inject, modify, or drop packets. A triggered in-path device here drops
	// the offending packet (so it never reaches the next hop) and may inject.
	InPath Placement = iota
	// OnPath devices receive a copy of passing packets and can only inject;
	// the original packet continues to the next hop.
	OnPath
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	if p == InPath {
		return "in-path"
	}
	return "on-path"
}

// Action is what a triggered device does to the flow.
type Action int

// Device actions observed in the wild (§3.1), plus DNS injection (the §8
// future-work extension).
const (
	ActionDrop Action = iota
	ActionRST
	ActionFIN
	ActionBlockpage
	ActionDNSInject
	// ActionThrottle slows matched flows instead of blocking them — the
	// technique behind Russia's social-media throttling the paper's
	// introduction cites ([79]). CenTrace's conservative blocking
	// definition deliberately does not classify throttling as censorship;
	// detecting it needs timing comparison (see experiments.ThrottlingDemo).
	ActionThrottle
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActionDrop:
		return "DROP"
	case ActionRST:
		return "RST"
	case ActionFIN:
		return "FIN"
	case ActionBlockpage:
		return "BLOCKPAGE"
	case ActionDNSInject:
		return "DNS-INJECT"
	case ActionThrottle:
		return "THROTTLE"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// MatchMode is how a device compares an extracted hostname against its rule
// list. The differences between modes are exactly what the hostname-mutating
// CenFuzz strategies surface (§6.3: leading-wildcard rules, keyword rules).
type MatchMode int

// Hostname matching modes.
const (
	// MatchExact requires the hostname to equal a rule entry.
	MatchExact MatchMode = iota
	// MatchSuffix implements leading-wildcard rules (*.domain.tld): the
	// hostname must equal the entry or end with it.
	MatchSuffix
	// MatchContains triggers when the entry appears anywhere in the
	// hostname, tolerating leading and trailing padding.
	MatchContains
	// MatchKeyword triggers on the second-level label alone (e.g. "example"
	// for rule example.com), catching even TLD changes.
	MatchKeyword
)

// String implements fmt.Stringer.
func (m MatchMode) String() string {
	switch m {
	case MatchExact:
		return "exact"
	case MatchSuffix:
		return "suffix"
	case MatchContains:
		return "contains"
	case MatchKeyword:
		return "keyword"
	default:
		return fmt.Sprintf("MatchMode(%d)", int(m))
	}
}

// RuleSet is a device's blocklist.
type RuleSet struct {
	Mode MatchMode
	// Domains are the configured rule entries. For MatchKeyword entries the
	// second-level label is extracted automatically.
	Domains []string
	// CaseInsensitive folds character case before matching. Most real
	// devices do (§6.3: capitalize strategies rarely evade).
	CaseInsensitive bool
}

// keyword extracts the second-level label of a domain ("example" from
// "www.example.com").
func keyword(domain string) string {
	labels := strings.Split(domain, ".")
	if len(labels) >= 2 {
		return labels[len(labels)-2]
	}
	return domain
}

// Matches reports whether host triggers any rule.
func (rs *RuleSet) Matches(host string) bool {
	if host == "" {
		return false
	}
	h := host
	if rs.CaseInsensitive {
		h = strings.ToLower(h)
	}
	for _, d := range rs.Domains {
		entry := d
		if rs.CaseInsensitive {
			entry = strings.ToLower(entry)
		}
		switch rs.Mode {
		case MatchExact:
			if h == entry {
				return true
			}
		case MatchSuffix:
			if h == entry || strings.HasSuffix(h, entry) {
				return true
			}
		case MatchContains:
			if strings.Contains(h, entry) {
				return true
			}
		case MatchKeyword:
			if kw := keyword(entry); kw != "" && strings.Contains(h, kw) {
				return true
			}
		}
	}
	return false
}

// TLSQuirks describes the limits of a device's TLS Client Hello parser.
type TLSQuirks struct {
	// ParseVersionMin/Max bound the version range the parser handles: the
	// hello is inspected only when its offered range [EffectiveMinVersion,
	// EffectiveMaxVersion] intersects [ParseVersionMin, ParseVersionMax].
	// A hello offering only TLS 1.0 — or only TLS 1.3 — falls outside a
	// 1.1–1.2 parser's window, which is how "setting the TLS Version to
	// 1.0 or 1.3" evades some devices (§6.3).
	ParseVersionMin, ParseVersionMax uint16
	// RequireKnownSuite, when non-empty, requires at least one offered
	// cipher suite to be in the set; otherwise the parser gives up (how
	// RC4-only hellos evade some devices, §6.3).
	RequireKnownSuite map[uint16]bool
}

// parses reports whether the device's TLS stack manages to inspect ch.
func (q *TLSQuirks) parses(ch *tlsgram.ClientHello) bool {
	if q.ParseVersionMin != 0 || q.ParseVersionMax != 0 {
		lo, hi := ch.EffectiveMinVersion(), ch.EffectiveMaxVersion()
		if q.ParseVersionMin != 0 && hi < q.ParseVersionMin {
			return false
		}
		if q.ParseVersionMax != 0 && lo > q.ParseVersionMax {
			return false
		}
	}
	if len(q.RequireKnownSuite) > 0 {
		known := false
		for _, cs := range ch.CipherSuites {
			if q.RequireKnownSuite[cs] {
				known = true
				break
			}
		}
		if !known {
			return false
		}
	}
	return true
}

// Quirks bundles the protocol-parsing idiosyncrasies of a device.
type Quirks struct {
	HTTP httpgram.ScanOptions
	// PathSensitive restricts HTTP blocking to requests for the root path
	// "/" (§6.3: alternate paths evade 68.72% of fuzzed requests).
	PathSensitive bool
	// RequireVersionWordExact requires the literal "HTTP" version word in
	// the request line; mangled words like "HtTP/1.1" or "XXXX/1.1" evade.
	RequireVersionWordExact bool
	// BlockSSHProtocol makes the device block SSH by protocol detection:
	// any payload starting with the "SSH-" version banner triggers,
	// regardless of the hostname rules (the SSH extension of §4.1 — SSH
	// carries no hostname, so real devices key on the protocol itself).
	BlockSSHProtocol bool
	TLS              TLSQuirks
}

// InjectionProfile is the wire-level fingerprint of packets the device
// injects — the features §7.1 extracts for clustering.
type InjectionProfile struct {
	IPID      uint16
	IPFlags   netem.IPFlags
	TTL       uint8 // ignored when CopyTTL is set on the device
	TCPWindow uint16
	Options   []netem.TCPOption
}

// Device is one censorship middlebox deployment.
type Device struct {
	ID        string
	Vendor    Vendor
	Placement Placement
	Action    Action
	Rules     RuleSet
	Quirks    Quirks
	Inject    InjectionProfile
	// CopyTTL makes injected packets reuse the IP TTL (and ID) of the
	// offending packet instead of a fresh TTL — the behaviour behind the
	// "Past E" artifact in RU (§4.3, Figure 2(E)).
	CopyTTL bool
	// Blockpage is the HTTP response body injected by ActionBlockpage.
	Blockpage string
	// Addr is the device's management address, probeable by CenProbe when
	// the device is in-path. Zero for devices without a public address.
	Addr netip.Addr
	// Services maps open TCP/UDP ports to protocol banners (CenProbe §5).
	Services map[int]string
	// ResidualWindow is how long after a trigger the device keeps dropping
	// packets between the same two hosts (stateful blocking, §4.1). Zero
	// disables residual blocking.
	ResidualWindow time.Duration
	// MaxInjectsPerFlow caps injections for one flow (some middleboxes
	// "only inject censored responses a certain number of times per TCP
	// connection", §4.1). Zero means unlimited.
	MaxInjectsPerFlow int
	// ThrottleDelay is the per-packet delay an ActionThrottle device
	// imposes; zero selects a 400 ms default.
	ThrottleDelay time.Duration
	// Personality is the device's TCP/IP stack fingerprint, observable by
	// Nmap-style probes against its management address.
	Personality TCPPersonality
	// BogusA is the forged A record a DNS-injecting device answers with;
	// zero selects the first well-known BogusAddrs entry.
	BogusA netip.Addr
	// DNSOnly restricts the device to DNS inspection (it ignores TCP
	// traffic entirely).
	DNSOnly bool
	// Reassembles makes the DPI engine accumulate TCP segments per flow
	// and match on the reassembled stream. Devices that inspect packets
	// individually are evaded by splitting the trigger across segments —
	// the classic evasion the Geneva/SymTCP line of work exploits (the
	// paper's [11], [72]).
	Reassembles bool

	residual map[hostPair]time.Duration
	injects  map[flowKey]int
	streams  map[flowKey][]byte

	// trigMemo caches the pure payload→triggered decision (hostname
	// extraction + rule matching), which depends only on the device's
	// immutable configuration. Devices are configured before traffic
	// flows; mutating Rules or Quirks afterwards is not supported.
	trigMemo map[string]bool
}

// maxStreamBuffer bounds per-flow reassembly state, as real DPI does.
const maxStreamBuffer = 8 << 10

// maxTrigMemo bounds the payload→triggered memo; fuzzing campaigns send
// unbounded distinct payloads, so the memo is cleared when full.
const maxTrigMemo = 1024

type hostPair struct{ a, b netip.Addr }

type flowKey struct {
	src, dst         netip.Addr
	srcPort, dstPort uint16
}

func normalizePair(a, b netip.Addr) hostPair {
	if b.Less(a) {
		a, b = b, a
	}
	return hostPair{a, b}
}

// Verdict is the device's decision about one packet.
type Verdict struct {
	// Triggered is true when the packet matched a censorship rule (or
	// residual state) and the device acted.
	Triggered bool
	// DropOriginal is true when the original packet must not be forwarded
	// (in-path devices).
	DropOriginal bool
	// Injected packets to deliver to the packet's source (spoofed from the
	// endpoint). Nil for drop-only actions.
	Injected []*netem.Packet
	// Residual is true when the trigger came from residual flow state
	// rather than payload inspection.
	Residual bool
	// ThrottleDelay is the extra delay a throttling device imposes on the
	// flow (zero for non-throttling actions).
	ThrottleDelay time.Duration
}

// httpVersionPrefix is hoisted so the RequireVersionWordExact check does
// not allocate per packet.
var httpVersionPrefix = []byte("HTTP/")

// extractHostname pulls the hostname the device keys on from the packet
// payload, honoring the device's parser quirks. ok is false when the
// payload carries no hostname this device can see.
func (d *Device) extractHostname(payload []byte) (string, bool) {
	if len(payload) == 0 {
		return "", false
	}
	if tlsgram.IsClientHello(payload) {
		ch, err := tlsgram.Parse(payload)
		if err != nil {
			return "", false
		}
		if !d.Quirks.TLS.parses(ch) {
			return "", false
		}
		return ch.SNI()
	}
	// Otherwise treat as HTTP.
	host, ok := httpgram.ExtractHost(payload, d.Quirks.HTTP)
	if !ok {
		return "", false
	}
	if d.Quirks.PathSensitive || d.Quirks.RequireVersionWordExact {
		_, path, version := httpgram.RequestLineFields(payload)
		if d.Quirks.PathSensitive && string(path) != "/" {
			return "", false
		}
		if d.Quirks.RequireVersionWordExact && !bytes.HasPrefix(version, httpVersionPrefix) {
			return "", false
		}
	}
	return host, true
}

// Inspect examines a client→endpoint packet at virtual time now and returns
// the device's verdict. endpoint is the IP the injected packets must spoof.
func (d *Device) Inspect(pkt *netem.Packet, endpoint netip.Addr, now time.Duration) Verdict {
	if pkt.UDP != nil {
		return d.inspectDNS(pkt, endpoint, now)
	}
	if pkt.TCP == nil || d.DNSOnly {
		return Verdict{}
	}
	// Residual state: drop everything between a flagged host pair.
	if d.ResidualWindow > 0 {
		if until, ok := d.residual[normalizePair(pkt.IP.Src, pkt.IP.Dst)]; ok {
			if now < until {
				return Verdict{Triggered: true, DropOriginal: d.Placement == InPath, Residual: true}
			}
			delete(d.residual, normalizePair(pkt.IP.Src, pkt.IP.Dst))
		}
	}
	// Reassembling engines match on the accumulated stream; per-packet
	// engines see only the segment in hand.
	payload := pkt.Payload
	if d.Reassembles && len(pkt.Payload) > 0 {
		key := flowKey{pkt.IP.Src, pkt.IP.Dst, pkt.TCP.SrcPort, pkt.TCP.DstPort}
		if d.streams == nil {
			d.streams = make(map[flowKey][]byte)
		}
		buf := append(d.streams[key], pkt.Payload...)
		if len(buf) > maxStreamBuffer {
			buf = buf[len(buf)-maxStreamBuffer:]
		}
		d.streams[key] = buf
		payload = buf
	}
	// Bare SYN/ACK/FIN segments carry nothing to match: no rule or
	// protocol check can trigger on an empty payload.
	if len(payload) == 0 {
		return Verdict{}
	}
	triggered := false
	if d.Quirks.BlockSSHProtocol && len(payload) >= 4 && string(payload[:4]) == "SSH-" {
		triggered = true
	}
	if !triggered {
		trig, seen := d.trigMemo[string(payload)]
		if !seen {
			host, ok := d.extractHostname(payload)
			trig = ok && d.Rules.Matches(host)
			if d.trigMemo == nil {
				d.trigMemo = make(map[string]bool)
			} else if len(d.trigMemo) >= maxTrigMemo {
				clear(d.trigMemo)
			}
			d.trigMemo[string(payload)] = trig
		}
		if !trig {
			return Verdict{}
		}
	}
	if d.ResidualWindow > 0 {
		if d.residual == nil {
			d.residual = make(map[hostPair]time.Duration)
		}
		d.residual[normalizePair(pkt.IP.Src, pkt.IP.Dst)] = now + d.ResidualWindow
	}
	if d.Action == ActionThrottle {
		delay := d.ThrottleDelay
		if delay == 0 {
			delay = 400 * time.Millisecond
		}
		return Verdict{Triggered: true, ThrottleDelay: delay}
	}
	v := Verdict{Triggered: true, DropOriginal: d.Placement == InPath}
	if d.Action == ActionDrop {
		return v
	}
	// Injection cap per flow.
	if d.MaxInjectsPerFlow > 0 {
		key := flowKey{pkt.IP.Src, pkt.IP.Dst, pkt.TCP.SrcPort, pkt.TCP.DstPort}
		if d.injects == nil {
			d.injects = make(map[flowKey]int)
		}
		if d.injects[key] >= d.MaxInjectsPerFlow {
			return v
		}
		d.injects[key]++
	}
	v.Injected = d.buildInjections(pkt, endpoint)
	return v
}

// buildInjections constructs the spoofed packets for a triggered flow.
func (d *Device) buildInjections(trigger *netem.Packet, endpoint netip.Addr) []*netem.Packet {
	ttl := d.Inject.TTL
	if ttl == 0 {
		ttl = 64
	}
	ipid := d.Inject.IPID
	if d.CopyTTL {
		// The device copies the IP header of the offending packet into its
		// injected response, including TTL and ID (§4.3, Figure 2(E)).
		ttl = trigger.IP.TTL
		ipid = trigger.IP.ID
	}
	base := netem.Packet{
		IP: netem.IPv4{
			TTL:      ttl,
			ID:       ipid,
			Flags:    d.Inject.IPFlags,
			Src:      endpoint,
			Dst:      trigger.IP.Src,
			Protocol: netem.ProtoTCP,
		},
		TCP: &netem.TCP{
			SrcPort: trigger.TCP.DstPort,
			DstPort: trigger.TCP.SrcPort,
			Seq:     trigger.TCP.Ack,
			Ack:     trigger.TCP.Seq + uint32(len(trigger.Payload)),
			Window:  d.Inject.TCPWindow,
			Options: d.Inject.Options,
		},
	}
	switch d.Action {
	case ActionRST:
		p := base.Clone()
		p.TCP.Flags = netem.TCPRst | netem.TCPAck
		return []*netem.Packet{p}
	case ActionFIN:
		p := base.Clone()
		p.TCP.Flags = netem.TCPFin | netem.TCPAck
		return []*netem.Packet{p}
	case ActionBlockpage:
		page := base.Clone()
		page.TCP.Flags = netem.TCPPsh | netem.TCPAck
		page.Payload = []byte("HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nConnection: close\r\n\r\n" + d.Blockpage)
		fin := base.Clone()
		fin.TCP.Flags = netem.TCPFin | netem.TCPAck
		fin.TCP.Seq += uint32(len(page.Payload))
		return []*netem.Packet{page, fin}
	default:
		return nil
	}
}

// Clone returns a deep copy of the device: configuration (rule lists,
// parser quirks, injection profile, service banners) and runtime flow state
// (residual windows, injection counters, reassembly buffers) are all
// copied, so mutating either device never shows through on the other.
// Parallel measurement workers clone the whole network, device included,
// to get private flow-tracking state.
func (d *Device) Clone() *Device {
	c := *d
	c.Rules.Domains = append([]string(nil), d.Rules.Domains...)
	c.Quirks.HTTP.MethodAllowlist = append([]string(nil), d.Quirks.HTTP.MethodAllowlist...)
	if d.Quirks.TLS.RequireKnownSuite != nil {
		c.Quirks.TLS.RequireKnownSuite = make(map[uint16]bool, len(d.Quirks.TLS.RequireKnownSuite))
		for k, v := range d.Quirks.TLS.RequireKnownSuite {
			c.Quirks.TLS.RequireKnownSuite[k] = v
		}
	}
	c.Inject.Options = append([]netem.TCPOption(nil), d.Inject.Options...)
	if d.Services != nil {
		c.Services = make(map[int]string, len(d.Services))
		for port, banner := range d.Services {
			c.Services[port] = banner
		}
	}
	if d.residual != nil {
		c.residual = make(map[hostPair]time.Duration, len(d.residual))
		for k, v := range d.residual {
			c.residual[k] = v
		}
	}
	if d.injects != nil {
		c.injects = make(map[flowKey]int, len(d.injects))
		for k, v := range d.injects {
			c.injects[k] = v
		}
	}
	if d.streams != nil {
		c.streams = make(map[flowKey][]byte, len(d.streams))
		for k, v := range d.streams {
			c.streams[k] = append([]byte(nil), v...)
		}
	}
	// The trigger memo is a pure function of the device's configuration,
	// but sharing the map across clones would race between workers; each
	// clone rebuilds its own.
	c.trigMemo = nil
	return &c
}

// ResetState clears stateful tracking (between independent measurements).
func (d *Device) ResetState() {
	d.residual = nil
	d.injects = nil
	d.streams = nil
}

// String implements fmt.Stringer.
func (d *Device) String() string {
	return fmt.Sprintf("%s[%s %s %s]", d.ID, d.Vendor, d.Placement, d.Action)
}

// TCPPersonality is the TCP/IP stack behaviour an Nmap-style scan observes
// from a device's management address — SYN-ACK window/TTL and the
// don't-fragment bit. The values are stable per product line, which is why
// active-probing fingerprint work ([43], [66] in the paper) keys on them.
type TCPPersonality struct {
	SYNACKWindow uint16
	SYNACKTTL    uint8
	DF           bool
}

// DefaultHostPersonality is the personality of a generic Linux server,
// returned for probed addresses that are not devices.
var DefaultHostPersonality = TCPPersonality{SYNACKWindow: 64240, SYNACKTTL: 64, DF: true}
