package middlebox

import (
	"net/netip"
	"time"

	"cendev/internal/httpgram"
	"cendev/internal/netem"
	"cendev/internal/tlsgram"
)

// Vendor names a censorship device manufacturer (or an unlabeled class).
// The commercial vendors are the ones §5.3 identified in AZ, BY, KZ, and RU.
type Vendor string

// Vendors modeled by the simulator.
const (
	VendorFortinet  Vendor = "Fortinet"
	VendorCisco     Vendor = "Cisco"
	VendorKerio     Vendor = "Kerio Control"
	VendorPaloAlto  Vendor = "Palo Alto"
	VendorDDoSGuard Vendor = "DDoSGuard"
	VendorMikrotik  Vendor = "Mikrotik"
	VendorKaspersky Vendor = "Kaspersky"
	// VendorUnknownRST is the unlabeled on-path RST-injector class dominant
	// in BY (§4.3: "most censorship devices in BY are deployed on-path, and
	// inject RST packets into flows").
	VendorUnknownRST Vendor = "unknown-rst"
	// VendorUnknownCopyTTL is the unlabeled RU injector class that copies
	// the IP header (including TTL) of censored packets into its resets,
	// producing the "Past E" artifact (§4.3, Figure 2(E)).
	VendorUnknownCopyTTL Vendor = "unknown-copyttl"
	// VendorUnknownDrop is the unlabeled dropping class with no probeable
	// services (§5.3: most potential device IPs host no public services).
	VendorUnknownDrop Vendor = "unknown-drop"
	// VendorDNSInjector is the on-path DNS packet injector class — the
	// paper's §8 future-work protocol, modeled after well-known national
	// injectors: it answers matching queries with a forged A record and
	// lets the real answer race in behind it.
	VendorDNSInjector Vendor = "dns-injector"
	// VendorNetsweeper models the commercial URL filter of the Planet
	// Netsweeper report the paper cites ([16]): blockpage injection with a
	// deny-page URL pattern, identifiable from the page rather than
	// banners.
	VendorNetsweeper Vendor = "Netsweeper"
	// VendorSandvine models the PacketLogic devices reported deployed for
	// Russian censorship (the paper's [1], [44]): in-path RST injection
	// with a distinctive fixed IP ID, no public services — the class that
	// stays unlabeled in banner scans.
	VendorSandvine Vendor = "Sandvine"
)

// Profile is a vendor's behaviour template: how its parser reads requests,
// what it does on a match, and what its injected packets and banners look
// like. Deployments instantiate devices from profiles via NewDevice.
type Profile struct {
	Vendor         Vendor
	Placement      Placement
	Action         Action
	MatchMode      MatchMode
	Quirks         Quirks
	Inject         InjectionProfile
	CopyTTL        bool
	Blockpage      string
	Services       map[int]string
	ResidualWindow time.Duration
	// MaxInjectsPerFlow caps injections per flow (see Device).
	MaxInjectsPerFlow int
	// Reassembles: whether the DPI engine reassembles TCP streams (see
	// Device). High-end commercial engines do; simpler ones inspect
	// packets individually and are evaded by segmentation.
	Reassembles bool
	// Personality is the management stack's TCP fingerprint (see Device).
	Personality TCPPersonality
	// RegistrableRules configures rules on the registrable domain
	// (example.com) instead of the full test hostname (www.example.com),
	// which changes which hostname mutations evade (§6.3).
	RegistrableRules bool
}

// Profiles is the registry of vendor behaviour templates. The quirk choices
// encode the paper's aggregate findings: nearly every device triggers on
// GET and POST but many miss PATCH and empty methods; most devices match
// hostnames case-insensitively but fail on truncated grammar words; only
// substring-scanning devices survive mangled delimiters; a few TLS stacks
// give up outside TLS 1.1–1.2 or without a recognized cipher suite.
var Profiles = map[Vendor]Profile{
	VendorFortinet: {
		Vendor:    VendorFortinet,
		Placement: InPath,
		Action:    ActionBlockpage,
		MatchMode: MatchSuffix,
		Quirks: Quirks{
			HTTP: httpgram.ScanOptions{Mode: httpgram.ScanSubstring},
		},
		Inject: InjectionProfile{
			IPID: 0x4000, TTL: 64, TCPWindow: 8192,
			Options: []netem.TCPOption{{Kind: netem.TCPOptMSS, Data: []byte{0x05, 0xb4}}},
		},
		Blockpage: `<html><head><title>Web Filter Violation</title></head>` +
			`<body><h1>Web Page Blocked!</h1><p>You have tried to access a web page ` +
			`which is in violation of your internet usage policy.</p>` +
			`<p>Powered by FortiGuard.</p></body></html>`,
		Personality: TCPPersonality{SYNACKWindow: 5840, SYNACKTTL: 64, DF: true},
		Services: map[int]string{
			22:  "SSH-2.0-FortiSSH",
			443: "Server: xxxxxxxx-xxxxx\r\nFortiGate Administrative Console",
			161: "Fortinet FortiGate-600E v6.4",
		},
		ResidualWindow:   90 * time.Second,
		RegistrableRules: true,
		Reassembles:      true,
	},
	VendorCisco: {
		Vendor:    VendorCisco,
		Placement: InPath,
		Action:    ActionDrop,
		MatchMode: MatchExact,
		Quirks: Quirks{
			HTTP: httpgram.ScanOptions{
				Mode:                       httpgram.ScanExactHostWord,
				MethodAllowlist:            []string{"GET", "POST", "PUT", "HEAD"},
				RequireCanonicalDelimiters: true,
			},
			PathSensitive:           true,
			RequireVersionWordExact: true,
		},
		Inject:      InjectionProfile{TTL: 255, TCPWindow: 0},
		Personality: TCPPersonality{SYNACKWindow: 4128, SYNACKTTL: 255, DF: false},
		Services: map[int]string{
			22: "SSH-2.0-Cisco-1.25",
			23: "\r\nUser Access Verification\r\n\r\nPassword: ",
		},
		ResidualWindow: 90 * time.Second,
	},
	VendorKerio: {
		Vendor:    VendorKerio,
		Placement: InPath,
		Action:    ActionDrop,
		MatchMode: MatchSuffix,
		Quirks: Quirks{
			HTTP: httpgram.ScanOptions{
				Mode:            httpgram.ScanCaseInsensitiveHostWord,
				MethodAllowlist: []string{"GET", "POST", "PUT"},
			},
			PathSensitive: true,
		},
		Inject:      InjectionProfile{TTL: 64, TCPWindow: 29200},
		Personality: TCPPersonality{SYNACKWindow: 29200, SYNACKTTL: 64, DF: true},
		Services: map[int]string{
			22:   "SSH-2.0-OpenSSH_8.0 Kerio",
			4081: "HTTP/1.1 301 Moved Permanently\r\nServer: Kerio Control Embedded Web Server\r\n",
		},
		ResidualWindow: 60 * time.Second,
	},
	VendorPaloAlto: {
		Vendor:    VendorPaloAlto,
		Placement: InPath,
		Action:    ActionDrop,
		MatchMode: MatchSuffix,
		Quirks: Quirks{
			HTTP: httpgram.ScanOptions{
				Mode:                        httpgram.ScanCaseInsensitiveHostWord,
				MethodAllowlist:             []string{"GET", "POST"},
				RequireParseableRequestLine: true,
			},
			TLS: TLSQuirks{ParseVersionMin: tlsgram.VersionTLS11, ParseVersionMax: tlsgram.VersionTLS12},
		},
		Inject:      InjectionProfile{TTL: 64, TCPWindow: 0},
		Personality: TCPPersonality{SYNACKWindow: 65535, SYNACKTTL: 64, DF: true},
		Services: map[int]string{
			443: "Server: PanWeb Server/ - \r\nPAN-OS web management interface",
			22:  "SSH-2.0-OpenSSH_7.8 PAN-OS",
		},
		ResidualWindow:   90 * time.Second,
		RegistrableRules: true,
		Reassembles:      true,
	},
	VendorDDoSGuard: {
		Vendor:    VendorDDoSGuard,
		Placement: InPath,
		Action:    ActionRST,
		MatchMode: MatchContains,
		Quirks: Quirks{
			HTTP: httpgram.ScanOptions{
				Mode:            httpgram.ScanCaseInsensitiveHostWord,
				MethodAllowlist: []string{"GET", "POST", "PUT"},
			},
		},
		Inject:      InjectionProfile{IPID: 0, TTL: 64, TCPWindow: 0},
		Personality: TCPPersonality{SYNACKWindow: 14600, SYNACKTTL: 64, DF: true},
		Services: map[int]string{
			80: "HTTP/1.1 403 Forbidden\r\nServer: ddos-guard\r\n",
		},
		ResidualWindow:   45 * time.Second,
		RegistrableRules: true,
	},
	VendorMikrotik: {
		Vendor:    VendorMikrotik,
		Placement: InPath,
		Action:    ActionDrop,
		MatchMode: MatchExact,
		Quirks: Quirks{
			HTTP: httpgram.ScanOptions{
				Mode:            httpgram.ScanCaseInsensitiveHostWord,
				MethodAllowlist: []string{"GET", "POST", "PUT"},
			},
		},
		Inject:      InjectionProfile{TTL: 64, TCPWindow: 14600},
		Personality: TCPPersonality{SYNACKWindow: 14600, SYNACKTTL: 64, DF: false},
		Services: map[int]string{
			22:   "SSH-2.0-ROSSSH",
			8291: "MikroTik RouterOS Winbox",
		},
		ResidualWindow: 60 * time.Second,
	},
	VendorKaspersky: {
		Vendor:    VendorKaspersky,
		Placement: InPath,
		Action:    ActionDrop,
		MatchMode: MatchKeyword,
		Quirks: Quirks{
			HTTP: httpgram.ScanOptions{
				Mode:            httpgram.ScanCaseInsensitiveHostWord,
				MethodAllowlist: []string{"GET"},
			},
		},
		Inject:      InjectionProfile{TTL: 64, TCPWindow: 64240},
		Personality: TCPPersonality{SYNACKWindow: 64240, SYNACKTTL: 128, DF: true},
		Services: map[int]string{
			80: "HTTP/1.1 403 Forbidden\r\nServer: Kaspersky Web Traffic Security\r\n",
		},
		ResidualWindow: 90 * time.Second,
	},
	VendorUnknownRST: {
		Vendor:    VendorUnknownRST,
		Placement: OnPath,
		Action:    ActionRST,
		MatchMode: MatchSuffix,
		Quirks: Quirks{
			HTTP: httpgram.ScanOptions{
				Mode:            httpgram.ScanCaseInsensitiveHostWord,
				MethodAllowlist: []string{"GET", "POST"},
			},
		},
		Inject:            InjectionProfile{IPID: 0xbeef, TTL: 64, TCPWindow: 1},
		ResidualWindow:    60 * time.Second,
		MaxInjectsPerFlow: 0,
		RegistrableRules:  true,
	},
	VendorUnknownCopyTTL: {
		Vendor:    VendorUnknownCopyTTL,
		Placement: InPath,
		Action:    ActionRST,
		MatchMode: MatchSuffix,
		CopyTTL:   true,
		Quirks: Quirks{
			HTTP: httpgram.ScanOptions{
				Mode:            httpgram.ScanCaseInsensitiveHostWord,
				MethodAllowlist: []string{"GET", "POST", "PUT"},
			},
		},
		Inject:           InjectionProfile{TCPWindow: 0},
		ResidualWindow:   60 * time.Second,
		RegistrableRules: true,
	},
	VendorDNSInjector: {
		Vendor:    VendorDNSInjector,
		Placement: OnPath,
		Action:    ActionDNSInject,
		MatchMode: MatchSuffix,
		Inject:    InjectionProfile{IPID: 0x1234, TTL: 64},
		// No ResidualWindow: classic DNS injectors are stateless.
		RegistrableRules: true,
	},
	VendorNetsweeper: {
		Vendor:    VendorNetsweeper,
		Placement: InPath,
		Action:    ActionBlockpage,
		MatchMode: MatchSuffix,
		Quirks: Quirks{
			HTTP: httpgram.ScanOptions{
				Mode:            httpgram.ScanCaseInsensitiveHostWord,
				MethodAllowlist: []string{"GET", "POST", "HEAD"},
			},
		},
		Inject: InjectionProfile{IPID: 0x0100, TTL: 64, TCPWindow: 5840},
		Blockpage: `<html><head><title>Web Page Blocked</title></head>` +
			`<body><p>The page you have requested has been blocked.</p>` +
			`<img src="http://deny.netsweeper.example/webadmin/deny/logo.gif">` +
			`</body></html>`,
		ResidualWindow:   60 * time.Second,
		RegistrableRules: true,
	},
	VendorSandvine: {
		Vendor:    VendorSandvine,
		Placement: InPath,
		Action:    ActionRST,
		MatchMode: MatchSuffix,
		Quirks: Quirks{
			HTTP: httpgram.ScanOptions{
				Mode:            httpgram.ScanCaseInsensitiveHostWord,
				MethodAllowlist: []string{"GET", "POST", "PUT", "HEAD"},
			},
		},
		// The fixed IP ID 0x3412 is the PacketLogic signature reported in
		// the Bad Traffic analysis.
		Inject:           InjectionProfile{IPID: 0x3412, TTL: 64, TCPWindow: 0},
		ResidualWindow:   60 * time.Second,
		RegistrableRules: true,
	},
	VendorUnknownDrop: {
		Vendor:    VendorUnknownDrop,
		Placement: InPath,
		Action:    ActionDrop,
		MatchMode: MatchSuffix,
		Quirks: Quirks{
			HTTP: httpgram.ScanOptions{
				Mode:            httpgram.ScanCaseInsensitiveHostWord,
				MethodAllowlist: []string{"GET", "POST", "PUT"},
			},
			PathSensitive: true,
		},
		Inject:         InjectionProfile{},
		ResidualWindow: 90 * time.Second,
	},
}

// registrable reduces a hostname to its registrable domain (last two
// labels): "www.example.com" → "example.com".
func registrable(host string) string {
	labels := splitLabels(host)
	if len(labels) <= 2 {
		return host
	}
	return labels[len(labels)-2] + "." + labels[len(labels)-1]
}

func splitLabels(host string) []string {
	var labels []string
	start := 0
	for i := 0; i < len(host); i++ {
		if host[i] == '.' {
			labels = append(labels, host[start:i])
			start = i + 1
		}
	}
	return append(labels, host[start:])
}

// NewDevice instantiates a device of the given vendor blocking the given
// domains. addr is the device's probeable management address (pass the zero
// netip.Addr for devices without one). Rule entries are reduced to
// registrable domains when the vendor profile calls for it.
func NewDevice(id string, vendor Vendor, domains []string, addr netip.Addr) *Device {
	p, ok := Profiles[vendor]
	if !ok {
		panic("middlebox: unknown vendor " + string(vendor))
	}
	rules := RuleSet{Mode: p.MatchMode, CaseInsensitive: true}
	for _, d := range domains {
		if p.RegistrableRules {
			rules.Domains = append(rules.Domains, registrable(d))
		} else {
			rules.Domains = append(rules.Domains, d)
		}
	}
	dev := &Device{
		ID:                id,
		Vendor:            vendor,
		Placement:         p.Placement,
		Action:            p.Action,
		Rules:             rules,
		Quirks:            p.Quirks,
		Inject:            p.Inject,
		CopyTTL:           p.CopyTTL,
		Blockpage:         p.Blockpage,
		Addr:              addr,
		ResidualWindow:    p.ResidualWindow,
		MaxInjectsPerFlow: p.MaxInjectsPerFlow,
		DNSOnly:           vendor == VendorDNSInjector,
		Reassembles:       p.Reassembles,
		Personality:       p.Personality,
	}
	if len(p.Services) > 0 && addr.IsValid() {
		dev.Services = make(map[int]string, len(p.Services))
		for port, banner := range p.Services {
			dev.Services[port] = banner
		}
	}
	return dev
}
