// Package cenprobe implements CenProbe, the device banner-grab pipeline
// (§5 of the paper): a port scan over commonly open ports on potential
// censorship-device IPs discovered by CenTrace, application-layer banner
// grabs on HTTP(S), SSH, Telnet, FTP, SMTP, and SNMP, and a Recog-style
// fingerprint database that labels device vendors from the banners.
package cenprobe

import (
	"net/netip"
	"regexp"
	"sort"
	"strconv"

	"cendev/internal/middlebox"
	"cendev/internal/obs"
	"cendev/internal/parallel"
	"cendev/internal/simnet"
)

// TopPorts is the representative slice of the Nmap top-1000 ports the
// scanner probes, covering the banner protocols of §5.1 plus common
// management ports of the modeled vendors.
var TopPorts = []int{
	21,   // FTP
	22,   // SSH
	23,   // Telnet
	25,   // SMTP
	53,   // DNS
	80,   // HTTP
	110,  // POP3
	143,  // IMAP
	161,  // SNMP
	443,  // HTTPS
	445,  // SMB
	587,  // submission
	993,  // IMAPS
	995,  // POP3S
	3389, // RDP
	4081, // Kerio Control admin
	8080, // HTTP alt
	8291, // MikroTik Winbox
	8443, // HTTPS alt
}

// ProtocolForPort names the application protocol scanned on a port.
func ProtocolForPort(port int) string {
	switch port {
	case 21:
		return "ftp"
	case 22:
		return "ssh"
	case 23:
		return "telnet"
	case 25, 587:
		return "smtp"
	case 161:
		return "snmp"
	case 80, 8080, 4081, 8291:
		return "http"
	case 443, 8443:
		return "https"
	default:
		return "tcp"
	}
}

// Fingerprint is one Recog-style banner fingerprint.
type Fingerprint struct {
	ID      string
	Vendor  string
	Pattern *regexp.Regexp
}

// Fingerprints is the vendor fingerprint database, built from public
// signatures of the firewall products §5.3 identified.
var Fingerprints = []Fingerprint{
	{ID: "fortinet-ssh", Vendor: "Fortinet", Pattern: regexp.MustCompile(`(?i)fortissh|fortigate|fortinet`)},
	{ID: "cisco-ssh", Vendor: "Cisco", Pattern: regexp.MustCompile(`(?i)SSH-2\.0-Cisco|User Access Verification`)},
	{ID: "kerio-control", Vendor: "Kerio Control", Pattern: regexp.MustCompile(`(?i)kerio`)},
	{ID: "paloalto-panos", Vendor: "Palo Alto", Pattern: regexp.MustCompile(`(?i)PAN-OS|PanWeb`)},
	{ID: "ddosguard-http", Vendor: "DDoSGuard", Pattern: regexp.MustCompile(`(?i)ddos-?guard`)},
	{ID: "mikrotik-ros", Vendor: "Mikrotik", Pattern: regexp.MustCompile(`(?i)ROSSSH|MikroTik|RouterOS`)},
	{ID: "kaspersky-swg", Vendor: "Kaspersky", Pattern: regexp.MustCompile(`(?i)kaspersky`)},
}

// ServiceBanner is one grabbed banner.
type ServiceBanner struct {
	Port     int
	Protocol string
	Banner   string
}

// Result is the outcome of probing one potential device IP.
type Result struct {
	Addr      netip.Addr
	OpenPorts []int
	Banners   []ServiceBanner
	// Vendor is the fingerprinted vendor label, "" when no banner matched.
	Vendor string
	// FingerprintID identifies which fingerprint matched.
	FingerprintID string
	// Personality is the Nmap-style TCP stack fingerprint, when any port
	// answered (§5.1: Nmap's crafted probes "invoke a unique and
	// potentially fingerprintable response").
	Personality    middlebox.TCPPersonality
	HasPersonality bool
}

// HasBannerProtocol reports whether any of the paper's six banner
// protocols (§5.1) was open.
func (r *Result) HasBannerProtocol() bool {
	for _, b := range r.Banners {
		switch b.Protocol {
		case "ssh", "telnet", "ftp", "smtp", "snmp", "http", "https":
			return true
		}
	}
	return false
}

// Probe scans one address: port scan over TopPorts, banner grab on each
// open port, fingerprint matching over the collected banners.
func Probe(n *simnet.Network, addr netip.Addr) *Result {
	res := &Result{Addr: addr}
	res.OpenPorts = n.OpenPorts(addr, TopPorts)
	for _, port := range res.OpenPorts {
		banner, ok := n.ProbeService(addr, port)
		if !ok {
			continue
		}
		res.Banners = append(res.Banners, ServiceBanner{
			Port:     port,
			Protocol: ProtocolForPort(port),
			Banner:   banner,
		})
	}
	res.Vendor, res.FingerprintID = matchVendor(res.Banners)
	res.Personality, res.HasPersonality = n.ProbeTCPPersonality(addr)
	if r := n.Obs(); r != nil {
		r.Counter("cenprobe_probes_total").Inc()
		r.Counter("cenprobe_open_ports_total").Add(int64(len(res.OpenPorts)))
		r.Counter("cenprobe_banners_total").Add(int64(len(res.Banners)))
		if res.Vendor != "" {
			r.Counter("cenprobe_vendor_matches_total", obs.L("vendor", res.Vendor)).Inc()
		}
	}
	return res
}

// matchVendor runs the fingerprint DB over banners, first match wins (the
// DB is ordered by specificity).
func matchVendor(banners []ServiceBanner) (vendor, id string) {
	for _, fp := range Fingerprints {
		for _, b := range banners {
			if fp.Pattern.MatchString(b.Banner) {
				return fp.Vendor, fp.ID
			}
		}
	}
	return "", ""
}

// ProbeAll probes a set of addresses and returns results in address order.
func ProbeAll(n *simnet.Network, addrs []netip.Addr) []*Result {
	return ProbeAllParallel(n, addrs, 1)
}

// ProbeAllParallel probes a set of addresses across a pool of workers and
// returns results in address order. Banner grabs resolve against the
// device and server registries without walking packets (see the package
// fidelity notes), so every probe is a pure read — workers share the
// network directly, no clones needed, and results are identical at every
// worker count.
func ProbeAllParallel(n *simnet.Network, addrs []netip.Addr, workers int) []*Result {
	return ProbeAllOpt(n, addrs, Opts{Workers: workers})
}

// Opts parameterizes ProbeAllOpt.
type Opts struct {
	// Workers is the parallel probe worker count; values below 1 mean one.
	Workers int
	// Tracer, when non-nil, records a scan span with one child per address,
	// stamped with the network's virtual clock.
	Tracer *obs.Tracer
	// Parent, when non-nil, is the span the scan nests under (ignored
	// without a Tracer).
	Parent *obs.Span
}

// ProbeAllOpt is ProbeAllParallel with span recording. Metric counters come
// from the network's installed registry (simnet.Network.SetObs) — probes
// are pure reads, so one shared registry serves every worker.
func ProbeAllOpt(n *simnet.Network, addrs []netip.Addr, o Opts) []*Result {
	sorted := append([]netip.Addr(nil), addrs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	var root *obs.Span
	if o.Parent != nil {
		root = o.Parent.StartChild("cenprobe.scan", n.Now(), obs.L("addrs", strconv.Itoa(len(sorted))))
	} else {
		root = o.Tracer.Start("cenprobe.scan", n.Now(), obs.L("addrs", strconv.Itoa(len(sorted))))
	}
	out := make([]*Result, len(sorted))
	parallel.ForEachOpt(len(sorted), o.Workers, parallel.Options{Pool: "cenprobe.probes", Obs: n.Obs()}, func(_, i int) {
		span := root.StartChild("cenprobe.probe", n.Now(), obs.L("addr", sorted[i].String()))
		out[i] = Probe(n, sorted[i])
		if v := out[i].Vendor; v != "" {
			span.SetAttr("vendor", v)
		}
		span.End(n.Now())
	})
	root.End(n.Now())
	return out
}

// Summary aggregates probe results the way §5.3 reports them.
type Summary struct {
	Probed        int
	WithOpenPorts int
	Labeled       int
	VendorCounts  map[string]int
}

// Summarize builds a Summary from probe results.
func Summarize(results []*Result) Summary {
	s := Summary{VendorCounts: make(map[string]int)}
	for _, r := range results {
		s.Probed++
		if len(r.OpenPorts) > 0 {
			s.WithOpenPorts++
		}
		if r.Vendor != "" {
			s.Labeled++
			s.VendorCounts[r.Vendor]++
		}
	}
	return s
}
