package cenprobe

// Service job entrypoint: internal/serve dispatches CenProbe banner-grab
// jobs through RunJob, which probes a set of addresses and returns a
// canonical JSON-stable payload in sorted address order.

import (
	"fmt"
	"net/netip"
	"sort"

	"cendev/internal/simnet"
)

// JobSpec parameterizes one service-dispatched banner-grab sweep.
type JobSpec struct {
	// Addrs are the addresses to probe, in any order; the payload is
	// always in sorted address order.
	Addrs   []netip.Addr
	Workers int
}

// BannerPayload is one grabbed banner in a probe payload.
type BannerPayload struct {
	Port     int    `json:"port"`
	Protocol string `json:"protocol"`
	Banner   string `json:"banner"`
}

// ProbePayload is one probed address in a probe payload.
type ProbePayload struct {
	Addr          string          `json:"addr"`
	OpenPorts     []int           `json:"open_ports,omitempty"`
	Vendor        string          `json:"vendor,omitempty"`
	FingerprintID string          `json:"fingerprint_id,omitempty"`
	Banners       []BannerPayload `json:"banners,omitempty"`
}

// JobResult is the canonical payload of one CenProbe job.
type JobResult struct {
	Probes  []ProbePayload `json:"probes"`
	Labeled int            `json:"labeled"`
}

// ParseAddrs parses the wire-level address strings of a probe spec.
func ParseAddrs(raw []string) ([]netip.Addr, error) {
	out := make([]netip.Addr, 0, len(raw))
	for _, s := range raw {
		a, err := netip.ParseAddr(s)
		if err != nil {
			return nil, fmt.Errorf("cenprobe: bad address %q: %w", s, err)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunJob probes every address in the spec across spec.Workers workers and
// returns the canonical payload. Banner grabs are pure reads against the
// device and server registries, so n may be shared — but service jobs
// still run on private clones for uniformity with the other kinds.
func RunJob(n *simnet.Network, spec JobSpec) JobResult {
	results := ProbeAllOpt(n, spec.Addrs, Opts{Workers: spec.Workers})
	out := JobResult{Probes: make([]ProbePayload, 0, len(results))}
	for _, r := range results {
		p := ProbePayload{
			Addr:          r.Addr.String(),
			OpenPorts:     r.OpenPorts,
			Vendor:        r.Vendor,
			FingerprintID: r.FingerprintID,
		}
		for _, b := range r.Banners {
			p.Banners = append(p.Banners, BannerPayload{Port: b.Port, Protocol: b.Protocol, Banner: b.Banner})
		}
		sort.Slice(p.Banners, func(i, j int) bool { return p.Banners[i].Port < p.Banners[j].Port })
		if r.Vendor != "" {
			out.Labeled++
		}
		out.Probes = append(out.Probes, p)
	}
	return out
}
