package cenprobe

import (
	"net/netip"
	"testing"

	"cendev/internal/endpoint"
	"cendev/internal/middlebox"
	"cendev/internal/simnet"
	"cendev/internal/topology"
)

// buildNet returns a network with one device of each commercial vendor
// attached on distinct router links.
func buildNet(t *testing.T) (*simnet.Network, map[string]netip.Addr) {
	t.Helper()
	g := topology.NewGraph()
	as := g.AddAS(100, "Net", "KZ")
	vendors := []middlebox.Vendor{
		middlebox.VendorFortinet, middlebox.VendorCisco, middlebox.VendorKerio,
		middlebox.VendorPaloAlto, middlebox.VendorDDoSGuard,
		middlebox.VendorMikrotik, middlebox.VendorKaspersky,
	}
	prev := g.AddRouter("r0", as)
	_ = prev
	addrs := map[string]netip.Addr{}
	n := simnet.New(g)
	for i, v := range vendors {
		id := string(rune('a' + i))
		r := g.AddRouter("r"+id, as)
		g.Link("r0", "r"+id)
		dev := middlebox.NewDevice("dev-"+id, v, nil, r.Addr)
		n.AttachDevice("r0", "r"+id, dev)
		addrs[string(v)] = r.Addr
	}
	return n, addrs
}

func TestProbeIdentifiesEveryVendor(t *testing.T) {
	n, addrs := buildNet(t)
	for vendor, addr := range addrs {
		res := Probe(n, addr)
		if res.Vendor != vendor {
			t.Errorf("vendor %s: labeled %q (banners: %v)", vendor, res.Vendor, res.Banners)
		}
		if len(res.OpenPorts) == 0 {
			t.Errorf("vendor %s: no open ports", vendor)
		}
		if !res.HasBannerProtocol() {
			t.Errorf("vendor %s: no banner protocol seen", vendor)
		}
	}
}

func TestProbeUnknownAddress(t *testing.T) {
	n, _ := buildNet(t)
	res := Probe(n, netip.MustParseAddr("203.0.113.99"))
	if len(res.OpenPorts) != 0 || res.Vendor != "" {
		t.Errorf("unknown address: %+v", res)
	}
	if res.HasBannerProtocol() {
		t.Error("no banners should be present")
	}
}

func TestProbeAddressedDeviceWithoutServices(t *testing.T) {
	g := topology.NewGraph()
	as := g.AddAS(1, "Net", "RU")
	r0 := g.AddRouter("r0", as)
	r1 := g.AddRouter("r1", as)
	g.Link("r0", "r1")
	_ = r0
	n := simnet.New(g)
	dev := middlebox.NewDevice("d", middlebox.VendorUnknownDrop, nil, r1.Addr)
	n.AttachDevice("r0", "r1", dev)
	res := Probe(n, r1.Addr)
	if len(res.OpenPorts) != 0 || res.Vendor != "" {
		t.Errorf("unknown-drop device should expose nothing: %+v", res)
	}
}

func TestProbeEndpointServer(t *testing.T) {
	g := topology.NewGraph()
	as := g.AddAS(1, "Net", "BY")
	r := g.AddRouter("r", as)
	h := g.AddHost("web", as, r)
	n := simnet.New(g)
	n.RegisterServer("web", endpoint.NewServer("site.example"))
	res := Probe(n, h.Addr)
	if res.Vendor != "" {
		t.Errorf("plain web server labeled as %q", res.Vendor)
	}
	has80 := false
	for _, p := range res.OpenPorts {
		if p == 80 {
			has80 = true
		}
	}
	if !has80 {
		t.Errorf("open ports = %v, want 80", res.OpenPorts)
	}
}

func TestProbeAllAndSummarize(t *testing.T) {
	n, addrs := buildNet(t)
	var list []netip.Addr
	for _, a := range addrs {
		list = append(list, a)
	}
	list = append(list, netip.MustParseAddr("203.0.113.99")) // nothing there
	results := ProbeAll(n, list)
	if len(results) != len(list) {
		t.Fatalf("results = %d, want %d", len(results), len(list))
	}
	s := Summarize(results)
	if s.Probed != 8 || s.WithOpenPorts != 7 || s.Labeled != 7 {
		t.Errorf("summary = %+v", s)
	}
	if s.VendorCounts["Fortinet"] != 1 || s.VendorCounts["Cisco"] != 1 {
		t.Errorf("vendor counts = %v", s.VendorCounts)
	}
}

func TestProtocolForPort(t *testing.T) {
	cases := map[int]string{
		21: "ftp", 22: "ssh", 23: "telnet", 25: "smtp", 161: "snmp",
		80: "http", 443: "https", 8443: "https", 9999: "tcp",
	}
	for port, want := range cases {
		if got := ProtocolForPort(port); got != want {
			t.Errorf("ProtocolForPort(%d) = %q, want %q", port, got, want)
		}
	}
}

func TestFingerprintsCoverAllServiceVendors(t *testing.T) {
	// Every commercial vendor profile with services must be identifiable
	// from at least one of its banners.
	for vendor, p := range middlebox.Profiles {
		if len(p.Services) == 0 {
			continue
		}
		matched := false
		for _, banner := range p.Services {
			for _, fp := range Fingerprints {
				if fp.Pattern.MatchString(banner) && fp.Vendor == string(vendor) {
					matched = true
				}
			}
		}
		if !matched {
			t.Errorf("vendor %s: no fingerprint matches its banners", vendor)
		}
	}
}

func TestProbePersonality(t *testing.T) {
	n, addrs := buildNet(t)
	forti := Probe(n, addrs[string(middlebox.VendorFortinet)])
	if !forti.HasPersonality {
		t.Fatal("Fortinet device should answer stack probes")
	}
	cisco := Probe(n, addrs[string(middlebox.VendorCisco)])
	if !cisco.HasPersonality {
		t.Fatal("Cisco device should answer stack probes")
	}
	if forti.Personality == cisco.Personality {
		t.Error("vendor stack personalities should differ")
	}
	if cisco.Personality.SYNACKTTL != 255 {
		t.Errorf("Cisco SYN-ACK TTL = %d, want 255", cisco.Personality.SYNACKTTL)
	}
	none := Probe(n, netip.MustParseAddr("203.0.113.99"))
	if none.HasPersonality {
		t.Error("unreachable address should answer no stack probes")
	}
}
