package topology

import (
	"sync"
	"testing"
)

func TestSetLinkUpWithdrawsAndRestores(t *testing.T) {
	g, src, dst := buildDiamond(t)
	g.SetLinkUp("r1", "r2a", false)
	if g.LinkUp("r1", "r2a") || g.LinkUp("r2a", "r1") {
		t.Fatal("withdrawn link still reports up")
	}
	for i := 0; i < 64; i++ {
		path := g.PathForFlow(src, dst, uint64(i)*0x9e3779b97f4a7c15)
		for _, r := range path {
			if r.ID == "r2a" {
				t.Fatalf("flow %d routed over withdrawn link via %s", i, r.ID)
			}
		}
		if len(path) != 3 {
			t.Fatalf("flow %d path length %d, want 3", i, len(path))
		}
	}
	if hops := g.NextHops("r1", "r3"); len(hops) != 1 || hops[0] != "r2b" {
		t.Fatalf("NextHops with r2a withdrawn = %v, want [r2b]", hops)
	}
	if paths := g.AllPaths(src, dst, 0); len(paths) != 1 {
		t.Fatalf("AllPaths with r2a withdrawn = %d paths, want 1", len(paths))
	}
	g.SetLinkUp("r2a", "r1", true) // order-insensitive key
	if paths := g.AllPaths(src, dst, 0); len(paths) != 2 {
		t.Fatalf("AllPaths after re-announce = %d paths, want 2", len(paths))
	}
}

func TestSetLinkUpPartitions(t *testing.T) {
	g, src, dst := buildDiamond(t)
	g.SetLinkUp("r1", "r2a", false)
	g.SetLinkUp("r1", "r2b", false)
	if p := g.PathForFlow(src, dst, 1); p != nil {
		t.Fatalf("partitioned graph returned path %v", p)
	}
	if len(g.AllPaths(src, dst, 0)) != 0 {
		t.Fatal("partitioned graph enumerated paths")
	}
}

func TestSetLinkUpBumpsGenAndIsIdempotent(t *testing.T) {
	g, _, _ := buildDiamond(t)
	g0 := g.Gen()
	g.SetLinkUp("r1", "r2a", true) // already up: no-op
	if g.Gen() != g0 {
		t.Fatal("no-op announce bumped Gen")
	}
	g.SetLinkUp("r1", "r2a", false)
	if g.Gen() == g0 {
		t.Fatal("withdrawal did not bump Gen")
	}
	g1 := g.Gen()
	g.SetLinkUp("r1", "r2a", false) // already down: no-op
	if g.Gen() != g1 {
		t.Fatal("no-op withdrawal bumped Gen")
	}
}

func TestSetLinkUpUnknownLinkPanics(t *testing.T) {
	g, _, _ := buildDiamond(t)
	defer func() {
		if recover() == nil {
			t.Fatal("SetLinkUp on unlinked routers did not panic")
		}
	}()
	g.SetLinkUp("r2a", "r2b", false)
}

func TestGenMonotonicAcrossClones(t *testing.T) {
	g, _, _ := buildDiamond(t)
	before := g.Gen()
	c := g.Clone()
	if c.Gen() != before {
		t.Fatalf("clone Gen = %d, source Gen = %d; clones must inherit the generation", c.Gen(), before)
	}
	c.SetLinkUp("r1", "r2a", false)
	if c.Gen() <= before {
		t.Fatalf("clone mutation Gen = %d, want > %d", c.Gen(), before)
	}
	if g.Gen() != before {
		t.Fatalf("clone mutation changed source Gen to %d", g.Gen())
	}
	// A clone of the mutated clone continues the sequence.
	cc := c.Clone()
	if cc.Gen() != c.Gen() {
		t.Fatalf("second-level clone Gen = %d, want %d", cc.Gen(), c.Gen())
	}
}

func TestClonePreservesLinkState(t *testing.T) {
	g, src, dst := buildDiamond(t)
	g.SetLinkUp("r1", "r2a", false)
	c := g.Clone()
	if c.LinkUp("r1", "r2a") {
		t.Fatal("clone lost withdrawn link state")
	}
	csrc, cdst := c.Host(src.ID), c.Host(dst.ID)
	if paths := c.AllPaths(csrc, cdst, 0); len(paths) != 1 {
		t.Fatalf("clone AllPaths = %d paths, want 1", len(paths))
	}
	// Announcing on the clone must not resurrect the source's link.
	c.SetLinkUp("r1", "r2a", true)
	if g.LinkUp("r1", "r2a") {
		t.Fatal("clone announce leaked into source")
	}
}

// TestCloneDuringRecomputeRace hammers Clone against concurrent path
// computation on the same graph — the interaction the route-dynamics
// engine exercises when it snapshots an epoch graph while a measurement
// worker is walking paths on the base. Run with -race.
func TestCloneDuringRecomputeRace(t *testing.T) {
	g, src, dst := buildDiamond(t)
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]*Router, 0, 8)
			for i := 0; i < iters; i++ {
				buf = g.AppendPathForFlow(buf, src, dst, uint64(w*iters+i), nil)
				if len(buf) == 0 {
					t.Error("path computation failed mid-hammer")
					return
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters/4; i++ {
				c := g.Clone()
				// The clone is private: mutating it (an epoch snapshot
				// applying withdrawals) must not disturb the base.
				c.SetLinkUp("r1", "r2a", false)
				if p := c.PathForFlow(c.Host(src.ID), c.Host(dst.ID), uint64(i)); len(p) != 3 {
					t.Errorf("clone path length %d, want 3", len(p))
					return
				}
			}
		}()
	}
	wg.Wait()
}
