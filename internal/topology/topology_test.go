package topology

import (
	"net/netip"
	"testing"
	"testing/quick"
)

// buildDiamond creates a 4-router diamond: src-r1-{r2a|r2b}-r3-dst with two
// equal-cost paths.
func buildDiamond(t *testing.T) (*Graph, *Host, *Host) {
	t.Helper()
	g := NewGraph()
	asA := g.AddAS(100, "SourceNet", "US")
	asB := g.AddAS(200, "TransitNet", "DE")
	asC := g.AddAS(300, "DestNet", "KZ")
	r1 := g.AddRouter("r1", asA)
	g.AddRouter("r2a", asB)
	g.AddRouter("r2b", asB)
	r3 := g.AddRouter("r3", asC)
	g.Link("r1", "r2a")
	g.Link("r1", "r2b")
	g.Link("r2a", "r3")
	g.Link("r2b", "r3")
	src := g.AddHost("client", asA, r1)
	dst := g.AddHost("server", asC, r3)
	return g, src, dst
}

func TestUniqueAddresses(t *testing.T) {
	g, _, _ := buildDiamond(t)
	seen := map[netip.Addr]string{}
	for _, r := range g.Routers() {
		if prev, dup := seen[r.Addr]; dup {
			t.Errorf("address %s assigned to both %s and %s", r.Addr, prev, r.ID)
		}
		seen[r.Addr] = r.ID
	}
	for _, h := range g.Hosts() {
		if prev, dup := seen[h.Addr]; dup {
			t.Errorf("address %s assigned to both %s and %s", h.Addr, prev, h.ID)
		}
		seen[h.Addr] = h.ID
	}
}

func TestAddressesInsideASPrefix(t *testing.T) {
	g, _, _ := buildDiamond(t)
	for _, r := range g.Routers() {
		if !r.AS.Prefix.Contains(r.Addr) {
			t.Errorf("router %s addr %s outside AS prefix %s", r.ID, r.Addr, r.AS.Prefix)
		}
	}
	for _, h := range g.Hosts() {
		if !h.AS.Prefix.Contains(h.Addr) {
			t.Errorf("host %s addr %s outside AS prefix %s", h.ID, h.Addr, h.AS.Prefix)
		}
	}
}

func TestPathForFlowValid(t *testing.T) {
	g, src, dst := buildDiamond(t)
	path := g.PathForFlow(src, dst, 12345)
	if len(path) != 3 {
		t.Fatalf("path length = %d, want 3 (r1, r2x, r3)", len(path))
	}
	if path[0].ID != "r1" || path[2].ID != "r3" {
		t.Errorf("path endpoints = %s..%s", path[0].ID, path[len(path)-1].ID)
	}
	mid := path[1].ID
	if mid != "r2a" && mid != "r2b" {
		t.Errorf("middle hop = %s", mid)
	}
}

func TestPathForFlowDeterministic(t *testing.T) {
	g, src, dst := buildDiamond(t)
	for _, h := range []uint64{0, 1, 42, 1 << 60} {
		p1 := g.PathForFlow(src, dst, h)
		p2 := g.PathForFlow(src, dst, h)
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("hash %d: nondeterministic path", h)
			}
		}
	}
}

func TestECMPVariance(t *testing.T) {
	g, src, dst := buildDiamond(t)
	mids := map[string]int{}
	for h := uint64(0); h < 200; h++ {
		path := g.PathForFlow(src, dst, FlowHash(src.Addr, dst.Addr, uint16(40000+h), 80, 6))
		mids[path[1].ID]++
	}
	if len(mids) != 2 {
		t.Fatalf("ECMP used %d distinct middle hops, want 2 (%v)", len(mids), mids)
	}
	for id, n := range mids {
		if n < 40 {
			t.Errorf("hop %s chosen only %d/200 times; ECMP split too skewed", id, n)
		}
	}
}

func TestAllPathsEnumeration(t *testing.T) {
	g, src, dst := buildDiamond(t)
	paths := g.AllPaths(src, dst, 0)
	if len(paths) != 2 {
		t.Fatalf("AllPaths = %d paths, want 2", len(paths))
	}
	limited := g.AllPaths(src, dst, 1)
	if len(limited) != 1 {
		t.Errorf("AllPaths(limit=1) = %d paths", len(limited))
	}
}

func TestNextHops(t *testing.T) {
	g, _, _ := buildDiamond(t)
	hops := g.NextHops("r1", "r3")
	if len(hops) != 2 || hops[0] != "r2a" || hops[1] != "r2b" {
		t.Errorf("NextHops(r1, r3) = %v", hops)
	}
	if hops := g.NextHops("r3", "r3"); hops != nil {
		t.Errorf("NextHops at destination = %v, want nil", hops)
	}
}

func TestDisconnectedPath(t *testing.T) {
	g := NewGraph()
	as := g.AddAS(1, "A", "US")
	r1 := g.AddRouter("island1", as)
	r2 := g.AddRouter("island2", as)
	h1 := g.AddHost("h1", as, r1)
	h2 := g.AddHost("h2", as, r2)
	if p := g.PathForFlow(h1, h2, 1); p != nil {
		t.Errorf("path across disconnected routers = %v", p)
	}
	if p := g.AllPaths(h1, h2, 0); p != nil {
		t.Errorf("AllPaths across disconnected routers = %v", p)
	}
}

func TestLinkUnknownRouterPanics(t *testing.T) {
	g := NewGraph()
	as := g.AddAS(1, "A", "US")
	g.AddRouter("a", as)
	defer func() {
		if recover() == nil {
			t.Error("Link with unknown router should panic")
		}
	}()
	g.Link("a", "missing")
}

func TestIdempotentAdds(t *testing.T) {
	g := NewGraph()
	as1 := g.AddAS(1, "A", "US")
	as2 := g.AddAS(1, "A-again", "DE")
	if as1 != as2 {
		t.Error("AddAS with same ASN should return the existing AS")
	}
	r1 := g.AddRouter("r", as1)
	r2 := g.AddRouter("r", as1)
	if r1 != r2 {
		t.Error("AddRouter with same ID should return the existing router")
	}
	g.Link("r", "r") // self-link allowed structurally but must not duplicate
	h1 := g.AddHost("h", as1, r1)
	h2 := g.AddHost("h", as1, r1)
	if h1 != h2 {
		t.Error("AddHost with same ID should return the existing host")
	}
}

func TestSamePathSameFlowLongChain(t *testing.T) {
	// A longer topology with nested ECMP groups.
	g := NewGraph()
	as := g.AddAS(1, "A", "US")
	ids := []string{"a", "b1", "b2", "c", "d1", "d2", "e"}
	for _, id := range ids {
		g.AddRouter(id, as)
	}
	g.Link("a", "b1")
	g.Link("a", "b2")
	g.Link("b1", "c")
	g.Link("b2", "c")
	g.Link("c", "d1")
	g.Link("c", "d2")
	g.Link("d1", "e")
	g.Link("d2", "e")
	src := g.AddHost("src", as, g.Router("a"))
	dst := g.AddHost("dst", as, g.Router("e"))
	paths := g.AllPaths(src, dst, 0)
	if len(paths) != 4 {
		t.Errorf("AllPaths = %d, want 4", len(paths))
	}
	for _, p := range paths {
		if len(p) != 5 {
			t.Errorf("path length = %d, want 5", len(p))
		}
	}
}

func TestQuickFlowHashStable(t *testing.T) {
	f := func(sp, dp uint16, proto uint8) bool {
		a := netip.AddrFrom4([4]byte{10, 0, 0, 1})
		b := netip.AddrFrom4([4]byte{10, 0, 0, 2})
		return FlowHash(a, b, sp, dp, proto) == FlowHash(a, b, sp, dp, proto)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFlowHashSensitiveToPort(t *testing.T) {
	a := netip.AddrFrom4([4]byte{10, 0, 0, 1})
	b := netip.AddrFrom4([4]byte{10, 0, 0, 2})
	diff := 0
	for sp := uint16(0); sp < 1000; sp++ {
		if FlowHash(a, b, sp, 80, 6) != FlowHash(a, b, sp+1, 80, 6) {
			diff++
		}
	}
	if diff < 990 {
		t.Errorf("flow hash collides too often across adjacent ports: %d/1000 differ", diff)
	}
}

func TestDeterministicAccessorOrder(t *testing.T) {
	g, _, _ := buildDiamond(t)
	r1 := g.Routers()
	r2 := g.Routers()
	for i := range r1 {
		if r1[i].ID != r2[i].ID {
			t.Fatal("Routers() order not deterministic")
		}
	}
	if len(g.ASes()) != 3 {
		t.Errorf("ASes() = %d, want 3", len(g.ASes()))
	}
	if g.AS(200).Name != "TransitNet" {
		t.Errorf("AS(200) = %v", g.AS(200))
	}
}

func TestQuickPathIsShortest(t *testing.T) {
	g, src, dst := buildDiamond(t)
	f := func(h uint64) bool {
		path := g.PathForFlow(src, dst, h)
		// The diamond's shortest router path is 3 hops; ECMP must never
		// produce a longer (or shorter) walk.
		return len(path) == 3 && path[0].ID == "r1" && path[2].ID == "r3"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
