// Package topology models the AS-level network graph the simulator routes
// over: autonomous systems with country and organization metadata, routers
// with per-router ICMP behaviour, hosts attached to routers, and links with
// equal-cost multipath (ECMP) routing. Path selection is deterministic per
// flow: a 5-tuple hash picks among equal-cost next hops, which reproduces
// the path variance CenTrace must cope with (§4.1: "90% of all paths to
// each endpoint are covered in 11 traceroutes on average").
package topology

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
)

// AS is an autonomous system.
type AS struct {
	ASN     uint32
	Name    string // organization, e.g. "Delta Telecom"
	Country string // ISO 3166-1 alpha-2, e.g. "AZ"
	Prefix  netip.Prefix
}

// String implements fmt.Stringer.
func (a *AS) String() string { return fmt.Sprintf("AS%d (%s, %s)", a.ASN, a.Name, a.Country) }

// Router is a network hop. Its ICMP behaviour shapes what CenTrace can see.
type Router struct {
	ID   string
	Addr netip.Addr
	AS   *AS
	// SendsICMP controls whether the router answers TTL expiry with an ICMP
	// Time Exceeded at all. Silent routers create gaps in traceroutes and
	// the rare "No ICMP" ambiguity (§4.3 found exactly one such case).
	SendsICMP bool
	// QuoteLen is the number of transport-segment bytes quoted in ICMP
	// errors: 8 for RFC 792 minimal routers, larger for RFC 1812 routers
	// (§4.3: 57.6% quoted the minimum).
	QuoteLen int
	// RewriteTOS, when non-nil, overwrites the IP TOS byte of forwarded
	// packets — the middlebox-adjacent behaviour behind the 32.06% of
	// quotes that differed in TOS (§4.3).
	RewriteTOS *uint8
	// SetIPFlags, when non-nil, overwrites the IP flag bits of forwarded
	// packets (one quoted packet in the paper differed in IP flags).
	SetIPFlags *uint8
}

// Host is a client or endpoint machine attached to a router.
type Host struct {
	ID     string
	Addr   netip.Addr
	AS     *AS
	Router *Router
}

// LinkID identifies a directed link between two routers.
type LinkID struct{ From, To string }

// Graph is the network topology.
type Graph struct {
	// mu guards the lazily built derived routing state (distCache, idx,
	// byIdx, routeCache, lastRt) and the mutators that invalidate it.
	// Measurement workers each own a private clone, so the lock is
	// uncontended on the packet hot path; it exists so that Clone — which
	// warms the source's caches — is safe against a concurrent route
	// recomputation on the same graph (the route-dynamics engine snapshots
	// epoch graphs from a base that may be computing paths at the time).
	mu      sync.Mutex
	ases    map[uint32]*AS
	routers map[string]*Router
	hosts   map[string]*Host
	adj     map[string][]string
	// down holds withdrawn links keyed by their canonical undirected form
	// (smaller ID first). A withdrawn link is skipped by every routing
	// computation as if absent, but stays in the adjacency so a later
	// re-announcement restores it. Nil means every link is announced.
	down map[LinkID]bool
	// addrSeq tracks per-AS address allocation.
	addrSeq map[uint32]int
	// distCache memoizes BFS distance maps per destination router; it is
	// invalidated whenever the graph changes. Path computation runs for
	// every simulated packet, so this cache carries the simulator.
	distCache map[string]map[string]int
	// gen counts structural mutations (routers, hosts, links). External
	// caches keyed on paths through this graph compare generations instead
	// of subscribing to invalidation.
	gen uint64
	// idx/byIdx give every router a dense index in sorted-ID order, and
	// routeCache holds per-destination forwarding tables over those
	// indices, so the per-packet path walk does no map lookups, sorting,
	// or allocation. Both are rebuilt lazily after mutations.
	idx        map[string]int32
	byIdx      []*Router
	routeCache map[string]*routeTable
	// lastRtID/lastRt short-circuit routeTableTo for the common case of
	// consecutive lookups toward the same destination (a measurement sends
	// every packet of a probe to one endpoint), skipping the string-keyed
	// map access.
	lastRtID string
	lastRt   *routeTable
}

// routeTable is a per-destination ECMP forwarding table: next[i] lists the
// dense indices of router i's equal-cost next hops toward the destination,
// sorted by router ID (the same order NextHops returns). Tables are
// immutable once built, which lets graph clones share them read-only.
type routeTable struct {
	next [][]int32
	// multi records whether any router has more than one equal-cost next
	// hop toward this destination. When false, the path to the destination
	// is independent of the flow hash, so per-flow path caches can collapse
	// all flows between a host pair onto one entry.
	multi bool
}

// NewGraph returns an empty topology.
func NewGraph() *Graph {
	return &Graph{
		ases:    make(map[uint32]*AS),
		routers: make(map[string]*Router),
		hosts:   make(map[string]*Host),
		adj:     make(map[string][]string),
		addrSeq: make(map[uint32]int),
	}
}

// AddAS registers an autonomous system. Each AS is allocated a /16 from
// 10.0.0.0/8 keyed by registration order (10.<index>.0.0/16), from which
// router and host addresses are assigned. At most 255 ASes fit; the
// scenarios in this repository use well under that.
func (g *Graph) AddAS(asn uint32, name, country string) *AS {
	g.mu.Lock()
	defer g.mu.Unlock()
	if a, ok := g.ases[asn]; ok {
		return a
	}
	idx := len(g.ases) + 1
	if idx > 255 {
		panic("topology: AS limit (255) exceeded")
	}
	prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(idx), 0, 0}), 16)
	a := &AS{ASN: asn, Name: name, Country: country, Prefix: prefix}
	g.ases[asn] = a
	return a
}

// nextAddr allocates the next address inside an AS prefix.
func (g *Graph) nextAddr(a *AS) netip.Addr {
	g.addrSeq[a.ASN]++
	seq := g.addrSeq[a.ASN]
	if seq > 0xfffe {
		panic("topology: AS address space exhausted")
	}
	p4 := a.Prefix.Addr().As4()
	p4[2] = byte(seq >> 8)
	p4[3] = byte(seq)
	return netip.AddrFrom4(p4)
}

// AddRouter creates a router in as with default behaviour: answers ICMP
// with RFC 792 minimal quoting.
func (g *Graph) AddRouter(id string, as *AS) *Router {
	g.mu.Lock()
	defer g.mu.Unlock()
	if r, ok := g.routers[id]; ok {
		return r
	}
	r := &Router{ID: id, Addr: g.nextAddr(as), AS: as, SendsICMP: true, QuoteLen: 8}
	g.routers[id] = r
	g.adj[id] = nil
	g.invalidate()
	return r
}

// invalidate drops every derived routing structure after a structural
// mutation and bumps the generation external caches compare against.
// Requires g.mu.
func (g *Graph) invalidate() {
	g.distCache = nil
	g.idx = nil
	g.byIdx = nil
	g.routeCache = nil
	g.lastRtID = ""
	g.lastRt = nil
	g.gen++
}

// Gen returns the graph's structural generation. It changes whenever
// routers, hosts, or links are added or link state flips, so callers
// caching computed paths can detect staleness with one comparison. Gen is
// monotonic across clones: a clone starts at its source's generation, so
// external caches keyed by generation never see the counter move
// backwards when they switch between a graph and its clone.
func (g *Graph) Gen() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.gen
}

// AddHost attaches a host to a router, allocating it an address in as.
func (g *Graph) AddHost(id string, as *AS, router *Router) *Host {
	g.mu.Lock()
	defer g.mu.Unlock()
	if h, ok := g.hosts[id]; ok {
		return h
	}
	h := &Host{ID: id, Addr: g.nextAddr(as), AS: as, Router: router}
	g.hosts[id] = h
	g.gen++
	return h
}

// Link connects two routers bidirectionally.
func (g *Graph) Link(a, b string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.routers[a]; !ok {
		panic("topology: unknown router " + a)
	}
	if _, ok := g.routers[b]; !ok {
		panic("topology: unknown router " + b)
	}
	for _, n := range g.adj[a] {
		if n == b {
			return
		}
	}
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
	g.invalidate()
}

// ukey returns the canonical undirected key for a link: smaller ID first.
func ukey(a, b string) LinkID {
	if b < a {
		a, b = b, a
	}
	return LinkID{From: a, To: b}
}

// edgeUp reports whether the undirected link a<->b is announced.
// Requires g.mu.
func (g *Graph) edgeUp(a, b string) bool {
	if len(g.down) == 0 {
		return true
	}
	return !g.down[ukey(a, b)]
}

// SetLinkUp announces (up=true) or withdraws (up=false) the undirected
// link between two routers — the topology-level primitive behind
// BGP-style route dynamics. A withdrawn link is invisible to BFS
// distances, forwarding tables, NextHops, and AllPaths, but stays in the
// adjacency so a later announcement restores it. A state change
// invalidates derived routing caches and bumps Gen; setting the current
// state again is a no-op. Panics if the routers are not linked.
func (g *Graph) SetLinkUp(a, b string, up bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	linked := false
	for _, n := range g.adj[a] {
		if n == b {
			linked = true
			break
		}
	}
	if !linked {
		panic("topology: no link " + a + " <-> " + b)
	}
	k := ukey(a, b)
	if up {
		if !g.down[k] {
			return
		}
		delete(g.down, k)
	} else {
		if g.down[k] {
			return
		}
		if g.down == nil {
			g.down = make(map[LinkID]bool)
		}
		g.down[k] = true
	}
	g.invalidate()
}

// LinkUp reports whether the undirected link between two routers is
// currently announced. Unknown pairs report true (there is nothing to
// withdraw).
func (g *Graph) LinkUp(a, b string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.edgeUp(a, b)
}

// Linked reports whether two routers share a link, announced or
// withdrawn.
func (g *Graph) Linked(a, b string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, n := range g.adj[a] {
		if n == b {
			return true
		}
	}
	return false
}

// Router returns a router by ID, or nil.
func (g *Graph) Router(id string) *Router { return g.routers[id] }

// Host returns a host by ID, or nil.
func (g *Graph) Host(id string) *Host { return g.hosts[id] }

// AS returns an AS by number, or nil.
func (g *Graph) AS(asn uint32) *AS { return g.ases[asn] }

// Routers returns all routers in deterministic order.
func (g *Graph) Routers() []*Router {
	ids := make([]string, 0, len(g.routers))
	for id := range g.routers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*Router, len(ids))
	for i, id := range ids {
		out[i] = g.routers[id]
	}
	return out
}

// Hosts returns all hosts in deterministic order.
func (g *Graph) Hosts() []*Host {
	ids := make([]string, 0, len(g.hosts))
	for id := range g.hosts {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*Host, len(ids))
	for i, id := range ids {
		out[i] = g.hosts[id]
	}
	return out
}

// ASes returns all ASes in ASN order.
func (g *Graph) ASes() []*AS {
	asns := make([]uint32, 0, len(g.ases))
	for asn := range g.ases {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	out := make([]*AS, len(asns))
	for i, asn := range asns {
		out[i] = g.ases[asn]
	}
	return out
}

// Clone returns a deep copy of the graph: independent AS, router, and host
// records (router behaviour pointers like RewriteTOS get their own storage)
// and an independent adjacency map. Clones exist so parallel measurement
// workers can each own a private graph — the route caches are lazily filled
// memos, which makes a shared Graph unsafe for concurrent path computation.
//
// Routing caches are warmed on the source graph and then shared with the
// clone: distance maps and forwarding tables are immutable once built and
// hold only router IDs and dense indices (never *Router pointers), and the
// clone's sorted-ID index assigns identical indices, so read-only sharing is
// safe and spares every worker clone a full Dijkstra rebuild. A mutation on
// either graph drops that graph's cache maps without touching the shared
// tables. Clone warms the source's caches under the graph mutex, so taking
// a clone is safe even while another goroutine is computing paths on the
// source (the route-dynamics engine snapshots epoch graphs this way); the
// campaign fan-out still serializes clone-taking for its other shared
// structures. The clone inherits the source's generation, keeping Gen
// monotonic across clones.
func (g *Graph) Clone() *Graph {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.warmAllRoutes()
	c := &Graph{
		ases:       make(map[uint32]*AS, len(g.ases)),
		routers:    make(map[string]*Router, len(g.routers)),
		hosts:      make(map[string]*Host, len(g.hosts)),
		adj:        make(map[string][]string, len(g.adj)),
		addrSeq:    make(map[uint32]int, len(g.addrSeq)),
		distCache:  make(map[string]map[string]int, len(g.distCache)),
		routeCache: make(map[string]*routeTable, len(g.routeCache)),
		gen:        g.gen,
	}
	if len(g.down) > 0 {
		c.down = make(map[LinkID]bool, len(g.down))
		for k, v := range g.down {
			c.down[k] = v
		}
	}
	for dst, dist := range g.distCache {
		c.distCache[dst] = dist
	}
	for dst, t := range g.routeCache {
		c.routeCache[dst] = t
	}
	for asn, a := range g.ases {
		cp := *a
		c.ases[asn] = &cp
	}
	for asn, seq := range g.addrSeq {
		c.addrSeq[asn] = seq
	}
	for id, r := range g.routers {
		cp := *r
		cp.AS = c.ases[r.AS.ASN]
		if r.RewriteTOS != nil {
			v := *r.RewriteTOS
			cp.RewriteTOS = &v
		}
		if r.SetIPFlags != nil {
			v := *r.SetIPFlags
			cp.SetIPFlags = &v
		}
		c.routers[id] = &cp
	}
	for id, h := range g.hosts {
		cp := *h
		cp.AS = c.ases[h.AS.ASN]
		if h.Router != nil {
			cp.Router = c.routers[h.Router.ID]
		}
		c.hosts[id] = &cp
	}
	for id, neighbors := range g.adj {
		c.adj[id] = append([]string(nil), neighbors...)
	}
	return c
}

// warmAllRoutes builds the forwarding table toward every router, so a
// subsequent Clone hands complete routing state to the copy. Cheap for the
// scenario-scale graphs this repository simulates (tens of routers), and a
// no-op once warm. Requires g.mu.
func (g *Graph) warmAllRoutes() {
	g.ensureIndex()
	for _, r := range g.byIdx {
		g.routeTableTo(r.ID)
	}
}

// distancesTo runs BFS from the destination router and returns hop
// distances for every router that can reach it over announced links.
// Results are memoized until the graph changes. Requires g.mu.
func (g *Graph) distancesTo(dst string) map[string]int {
	if cached, ok := g.distCache[dst]; ok {
		return cached
	}
	dist := map[string]int{dst: 0}
	queue := []string{dst}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		neighbors := append([]string(nil), g.adj[cur]...)
		sort.Strings(neighbors)
		for _, n := range neighbors {
			if !g.edgeUp(cur, n) {
				continue
			}
			if _, seen := dist[n]; !seen {
				dist[n] = dist[cur] + 1
				queue = append(queue, n)
			}
		}
	}
	if g.distCache == nil {
		g.distCache = make(map[string]map[string]int)
	}
	g.distCache[dst] = dist
	return dist
}

// NextHops returns the equal-cost next hops from router `from` toward
// router `dst`, in deterministic order.
func (g *Graph) NextHops(from, dst string) []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	dist := g.distancesTo(dst)
	d, ok := dist[from]
	if !ok || from == dst {
		return nil
	}
	var hops []string
	for _, n := range g.adj[from] {
		if dist[n] == d-1 && g.edgeUp(from, n) {
			hops = append(hops, n)
		}
	}
	sort.Strings(hops)
	return hops
}

// PathForFlow computes the router path from src's router to dst's router
// for a given flow hash, choosing among equal-cost next hops by mixing the
// hash with the hop position (per-flow ECMP: the same flow always takes the
// same path; different source ports may take different paths).
func (g *Graph) PathForFlow(src, dst *Host, flowHash uint64) []*Router {
	return g.PathForFlowSalted(src, dst, flowHash, nil)
}

// PathForFlowSalted is PathForFlow with a per-router perturbation: at each
// router making an ECMP choice, salt(routerID) is XORed into the flow hash
// before the next hop is picked. A nil salt function (or one returning 0)
// reproduces PathForFlow exactly. The fault engine uses this to model
// route flaps: a router whose salt changes over virtual time re-rolls its
// next-hop choice, emulating path churn without touching the topology.
func (g *Graph) PathForFlowSalted(src, dst *Host, flowHash uint64, salt func(routerID string) uint64) []*Router {
	return g.AppendPathForFlow(nil, src, dst, flowHash, salt)
}

// ensureIndex (re)builds the dense router index in sorted-ID order.
// Requires g.mu. The built map and slice are never mutated in place after
// this returns (invalidation replaces them wholesale), so references
// captured under the lock stay safe to read after it is released.
func (g *Graph) ensureIndex() {
	if g.idx != nil {
		return
	}
	ids := make([]string, 0, len(g.routers))
	for id := range g.routers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	g.idx = make(map[string]int32, len(ids))
	g.byIdx = make([]*Router, len(ids))
	for i, id := range ids {
		g.idx[id] = int32(i)
		g.byIdx[i] = g.routers[id]
	}
}

// routeTableTo returns (building and memoizing if needed) the forwarding
// table toward dst. The equal-cost next-hop sets are computed once with the
// same sort order PathForFlowSalted historically used, so table-driven
// walks pick byte-identical paths. Requires g.mu.
func (g *Graph) routeTableTo(dst string) *routeTable {
	if g.lastRt != nil && g.lastRtID == dst {
		return g.lastRt
	}
	if t, ok := g.routeCache[dst]; ok {
		g.lastRtID, g.lastRt = dst, t
		return t
	}
	g.ensureIndex()
	dist := g.distancesTo(dst)
	t := &routeTable{next: make([][]int32, len(g.byIdx))}
	var hops []string
	for i, r := range g.byIdx {
		d, ok := dist[r.ID]
		if !ok || r.ID == dst {
			continue
		}
		hops = hops[:0]
		for _, n := range g.adj[r.ID] {
			if dist[n] == d-1 && g.edgeUp(r.ID, n) {
				hops = append(hops, n)
			}
		}
		sort.Strings(hops)
		if len(hops) == 0 {
			continue
		}
		nx := make([]int32, len(hops))
		for k, h := range hops {
			nx[k] = g.idx[h]
		}
		if len(nx) > 1 {
			t.multi = true
		}
		t.next[i] = nx
	}
	if g.routeCache == nil {
		g.routeCache = make(map[string]*routeTable)
	}
	g.routeCache[dst] = t
	g.lastRtID, g.lastRt = dst, t
	return t
}

// SinglePathTo reports whether routing toward dst's router involves no
// equal-cost choice anywhere in the graph — i.e. the path from any source
// is independent of the flow hash. Callers caching per-flow paths use this
// to collapse all flows of a host pair onto one cache entry.
func (g *Graph) SinglePathTo(dst *Host) bool {
	if dst.Router == nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return !g.routeTableTo(dst.Router.ID).multi
}

// AppendPathForFlow computes the same path as PathForFlowSalted but appends
// the routers into buf (resliced to zero length first) and walks a
// memoized per-destination forwarding table, so the per-packet cost is a
// handful of integer ops per hop with no sorting, map lookups, or
// allocation. Returns nil when the hosts are not connected.
func (g *Graph) AppendPathForFlow(buf []*Router, src, dst *Host, flowHash uint64, salt func(routerID string) uint64) []*Router {
	if src.Router == nil || dst.Router == nil {
		return nil
	}
	// The forwarding table may have been inherited from a Clone source, so
	// the dense index is ensured separately (identical sorted-ID order on
	// both graphs keeps inherited indices valid). The table, index map, and
	// router slice are captured under the lock and immutable afterwards, so
	// the walk itself — and the caller's salt function — run unlocked.
	g.mu.Lock()
	g.ensureIndex()
	t := g.routeTableTo(dst.Router.ID)
	idx, byIdx := g.idx, g.byIdx
	g.mu.Unlock()
	cur, ok := idx[src.Router.ID]
	if !ok {
		return nil
	}
	dstIdx := idx[dst.Router.ID]
	buf = append(buf[:0], byIdx[cur])
	hop := 0
	for cur != dstIdx {
		choices := t.next[cur]
		if len(choices) == 0 {
			return nil // dst unreachable from cur
		}
		h := flowHash
		if salt != nil {
			h ^= salt(byIdx[cur].ID)
		}
		// Use the high bits of the mixed hash: low bits can correlate with
		// the source-port sequence and collapse the ECMP spread.
		cur = choices[(mix(h, uint64(hop))>>32)%uint64(len(choices))]
		buf = append(buf, byIdx[cur])
		hop++
	}
	return buf
}

// AllPaths enumerates every ECMP path between the hosts' routers, up to
// limit paths (0 means no limit). Used by tests and by the path-variance
// calibration experiment.
func (g *Graph) AllPaths(src, dst *Host, limit int) [][]*Router {
	g.mu.Lock()
	defer g.mu.Unlock()
	dist := g.distancesTo(dst.Router.ID)
	if _, ok := dist[src.Router.ID]; !ok {
		return nil
	}
	var out [][]*Router
	var walk func(cur string, acc []*Router)
	walk = func(cur string, acc []*Router) {
		if limit > 0 && len(out) >= limit {
			return
		}
		acc = append(acc, g.routers[cur])
		if cur == dst.Router.ID {
			out = append(out, append([]*Router(nil), acc...))
			return
		}
		d := dist[cur]
		var hops []string
		for _, n := range g.adj[cur] {
			if dist[n] == d-1 && g.edgeUp(cur, n) {
				hops = append(hops, n)
			}
		}
		sort.Strings(hops)
		for _, n := range hops {
			walk(n, acc)
		}
	}
	walk(src.Router.ID, nil)
	return out
}

// FlowHash computes the per-flow hash used by ECMP from the 5-tuple.
func FlowHash(src, dst netip.Addr, srcPort, dstPort uint16, proto uint8) uint64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	write := func(b []byte) {
		for _, c := range b {
			h ^= uint64(c)
			h *= 1099511628211
		}
	}
	s4, d4 := src.As4(), dst.As4()
	write(s4[:])
	write(d4[:])
	write([]byte{byte(srcPort >> 8), byte(srcPort), byte(dstPort >> 8), byte(dstPort), proto})
	return h
}

// mix combines a flow hash with a hop index into a new pseudo-random value.
func mix(h, hop uint64) uint64 {
	x := h ^ (hop+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
