#!/usr/bin/env bash
# ci.sh — the repository's continuous-integration gate, runnable locally
# and from .github/workflows/ci.yml. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

# Short fuzz smoke: a few seconds per parser target, enough to catch
# regressions in the grammar/codec round-trips without holding CI hostage.
FUZZTIME="${FUZZTIME:-5s}"
echo "==> fuzz smoke (${FUZZTIME} per target)"
go test -run=^$ -fuzz=FuzzParse -fuzztime="$FUZZTIME" ./internal/httpgram
go test -run=^$ -fuzz=FuzzParse -fuzztime="$FUZZTIME" ./internal/tlsgram
go test -run=^$ -fuzz=FuzzParse -fuzztime="$FUZZTIME" ./internal/dnsgram
go test -run=^$ -fuzz=FuzzDecodePacket -fuzztime="$FUZZTIME" ./internal/netem

echo "==> ci.sh: all green"
