#!/usr/bin/env bash
# ci.sh — the repository's continuous-integration gate, runnable locally
# and from .github/workflows/ci.yml. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

# Parallel measurement engine: benchmark the campaign worker pool at
# 1/2/4/8 workers and record the trajectory, then smoke-run a real
# campaign at -workers=4 (also exercises clone isolation end to end).
echo "==> parallel campaign benchmarks -> BENCH_parallel.json"
go test -run '^$' -bench 'BenchmarkCampaignParallel' -benchtime 1x -json . > BENCH_parallel.json
go run ./cmd/centrace -all -workers 4 > /dev/null
echo "==> parallel campaign smoke (-workers=4) ok"

# Observability: vet the obs package, benchmark the instrumented campaign
# against the uninstrumented one (BENCH_obs.json; the enabled run should
# stay within a few percent), and smoke a real campaign with metrics and
# trace emission, asserting the core series actually recorded work.
echo "==> go vet ./internal/obs/"
go vet ./internal/obs/
echo "==> obs overhead benchmarks -> BENCH_obs.json"
go test -run '^$' -bench 'BenchmarkCampaignObs' -benchtime 20x -json . > BENCH_obs.json
echo "==> obs smoke (-metrics-out/-trace-out)"
go run ./cmd/centrace -all -workers 4 -metrics-out /tmp/ci_obs_metrics.json -trace-out /tmp/ci_obs_trace.json > /dev/null
jq -e '.metrics | length > 0' /tmp/ci_obs_metrics.json > /dev/null
jq -e '[.metrics[] | select(.name == "centrace_targets_total") | .value] | add > 0' /tmp/ci_obs_metrics.json > /dev/null
jq -e '[.metrics[] | select(.name == "simnet_packets_forwarded_total") | .value] | add > 0' /tmp/ci_obs_metrics.json > /dev/null
jq -e '.spans | length > 0' /tmp/ci_obs_trace.json > /dev/null
echo "==> obs smoke ok"

# Short fuzz smoke: a few seconds per parser target, enough to catch
# regressions in the grammar/codec round-trips without holding CI hostage.
FUZZTIME="${FUZZTIME:-5s}"
echo "==> fuzz smoke (${FUZZTIME} per target)"
go test -run=^$ -fuzz=FuzzParse -fuzztime="$FUZZTIME" ./internal/httpgram
go test -run=^$ -fuzz=FuzzParse -fuzztime="$FUZZTIME" ./internal/tlsgram
go test -run=^$ -fuzz=FuzzParse -fuzztime="$FUZZTIME" ./internal/dnsgram
go test -run=^$ -fuzz=FuzzDecodePacket -fuzztime="$FUZZTIME" ./internal/netem

echo "==> ci.sh: all green"
