#!/usr/bin/env bash
# ci.sh — the repository's continuous-integration gate, runnable locally
# and from .github/workflows/ci.yml. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> go build ./..."
go build ./...

echo "==> gofmt gate"
UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
  echo "gofmt needed on:"; echo "$UNFORMATTED"; exit 1
fi

# Unified static-analysis stage: stock vet over everything (this
# includes internal/obs, whose ad-hoc `go vet ./internal/obs/` line was
# promoted here), then cenlint — the repo's own go/analysis-style suite
# enforcing the determinism and persistence invariants, now
# interprocedurally (DESIGN.md §17): cross-package taint chains, pooled
# aliases escaping their release point, lock discipline, unstoppable
# goroutines. The suite runs twice against one summary cache: the cold
# run populates it, the warm run must be served entirely from it and be
# faster — that pins the cache keying (a stale hit would also desync
# findings). Both timings land in BENCH_lint.json.
echo "==> go vet ./..."
go vet ./...
echo "==> cenlint ./... (cold, then warm from summary cache)"
go build -o /tmp/ci_cenlint ./cmd/cenlint
CENLINT_CACHE=$(mktemp -d /tmp/ci_cenlint_cache.XXXXXX)
/tmp/ci_cenlint -cache "$CENLINT_CACHE" -timing /tmp/ci_lint_cold.json ./...
/tmp/ci_cenlint -cache "$CENLINT_CACHE" -timing /tmp/ci_lint_warm.json ./...
jq -n --slurpfile c /tmp/ci_lint_cold.json --slurpfile w /tmp/ci_lint_warm.json \
  '{cold: $c[0], warm: $w[0]}' > BENCH_lint.json
jq -e '.warm.cache_hits == .warm.packages and .warm.packages > 0' BENCH_lint.json > /dev/null \
  || { echo "warm cenlint run missed the summary cache"; cat BENCH_lint.json; exit 1; }
jq -e '.warm.total_ms < .cold.total_ms' BENCH_lint.json > /dev/null \
  || { echo "warm cenlint run not faster than cold"; cat BENCH_lint.json; exit 1; }
echo "==> cenlint warm $(jq .warm.total_ms BENCH_lint.json)ms vs cold $(jq .cold.total_ms BENCH_lint.json)ms"
rm -rf "$CENLINT_CACHE" /tmp/ci_lint_cold.json /tmp/ci_lint_warm.json

echo "==> go test -race ./..."
# The lint engine first and explicitly: the driver analyzes packages in
# parallel while publishing summaries to one shared ipa.Program, so it
# runs under the race detector on every CI pass.
go test -race ./internal/lint/...
go test -race ./...

# Parallel measurement engine: benchmark the campaign worker pool at
# 1/2/4/8 workers and record the trajectory, then smoke-run a real
# campaign at -workers=4 (also exercises clone isolation end to end).
echo "==> parallel campaign benchmarks -> BENCH_parallel.json"
go test -run '^$' -bench 'BenchmarkCampaignParallel' -benchtime 1x -json . > BENCH_parallel.json
go run ./cmd/centrace -all -workers 4 > /dev/null
echo "==> parallel campaign smoke (-workers=4) ok"

# Hot-path allocation gate: the pooled packet plane and binary record
# codecs must stay allocation-flat. Record the three hot-path benches
# (packet forward, store append, journal append) with -benchmem, then
# fail if packet forwarding regresses above 8 allocs/op (steady state is
# 0; the headroom absorbs one-off pool growth under -benchtime 2000x).
echo "==> hot-path benchmarks -> BENCH_hotpath.json"
go test -run '^$' -bench 'Benchmark(SimnetTransmit|StoreAppend|JournalAppend)$' \
  -benchmem -benchtime 2000x -json . > BENCH_hotpath.json
TRANSMIT_ALLOCS=$(jq -r 'select(.Action == "output") | .Output' BENCH_hotpath.json \
  | awk '/^BenchmarkSimnetTransmit/ { print $(NF-1) }')
if [ -z "$TRANSMIT_ALLOCS" ] || [ "$TRANSMIT_ALLOCS" -gt 8 ]; then
  echo "packet-forward allocation regression: ${TRANSMIT_ALLOCS:-missing} allocs/op (gate: 8)"
  exit 1
fi
echo "==> packet forward at $TRANSMIT_ALLOCS allocs/op (gate: 8)"

# Observability: benchmark the instrumented campaign against the
# uninstrumented one (BENCH_obs.json; the enabled run should stay within
# a few percent), and smoke a real campaign with metrics and trace
# emission, asserting the core series actually recorded work.
echo "==> obs overhead benchmarks -> BENCH_obs.json"
go test -run '^$' -bench 'BenchmarkCampaignObs' -benchtime 20x -json . > BENCH_obs.json
echo "==> obs smoke (-metrics-out/-trace-out)"
go run ./cmd/centrace -all -workers 4 -metrics-out /tmp/ci_obs_metrics.json -trace-out /tmp/ci_obs_trace.json > /dev/null
jq -e '.metrics | length > 0' /tmp/ci_obs_metrics.json > /dev/null
jq -e '[.metrics[] | select(.name == "centrace_targets_total") | .value] | add > 0' /tmp/ci_obs_metrics.json > /dev/null
jq -e '[.metrics[] | select(.name == "simnet_packets_forwarded_total") | .value] | add > 0' /tmp/ci_obs_metrics.json > /dev/null
jq -e '.spans | length > 0' /tmp/ci_obs_trace.json > /dev/null
echo "==> obs smoke ok"

# Orchestration service: build the daemon, start it on loopback, drive a
# seeded centrace job through submit → poll → result, assert the payload
# and the service counters, then SIGTERM and assert a clean drain (exit 0,
# no torn store segments).
echo "==> censerved smoke"
go build -o /tmp/ci_censerved ./cmd/censerved
CENSERVED_STORE=$(mktemp -d /tmp/ci_censerved_store.XXXXXX)
CENSERVED_ADDR=127.0.0.1:8377
/tmp/ci_censerved -listen "$CENSERVED_ADDR" -store "$CENSERVED_STORE" -workers 2 &
CENSERVED_PID=$!
for i in $(seq 1 50); do
  curl -sf "http://$CENSERVED_ADDR/healthz" > /dev/null && break
  sleep 0.1
  if ! kill -0 "$CENSERVED_PID" 2>/dev/null; then echo "censerved died on startup"; exit 1; fi
done
JOB=$(curl -sf -X POST "http://$CENSERVED_ADDR/v1/jobs" \
  -d '{"kind":"centrace","endpoint":"az-ep-0-0","domain":"www.globalblocked.example","seed":7}' | jq -r .id)
for i in $(seq 1 100); do
  STATE=$(curl -sf "http://$CENSERVED_ADDR/v1/jobs/$JOB" | jq -r .state)
  [ "$STATE" = done ] && break
  [ "$STATE" = failed ] && { echo "censerved job failed"; curl -s "http://$CENSERVED_ADDR/v1/jobs/$JOB"; exit 1; }
  sleep 0.1
done
[ "$STATE" = done ] || { echo "censerved job not done after 10s (state=$STATE)"; exit 1; }
curl -sf "http://$CENSERVED_ADDR/v1/results/$JOB" | jq -e '.valid == true and .blocked == true' > /dev/null
curl -sf "http://$CENSERVED_ADDR/metrics" | grep -q 'censerved_jobs_submitted_total{tenant="default"} 1'
curl -sf "http://$CENSERVED_ADDR/metrics" | grep -q 'censerved_jobs_done_total{kind="centrace"} 1'
kill -TERM "$CENSERVED_PID"
if ! wait "$CENSERVED_PID"; then echo "censerved drain exited nonzero"; exit 1; fi
# No torn segments: the export view must replay the binary segments with
# no repair warnings, as clean JSON, and still hold the finished job.
/tmp/ci_censerved -export-store -store "$CENSERVED_STORE" \
  > /tmp/ci_store_export.jsonl 2> /tmp/ci_store_export.err
if grep -q . /tmp/ci_store_export.err; then
  echo "store export warned:"; cat /tmp/ci_store_export.err; exit 1
fi
jq -ce . < /tmp/ci_store_export.jsonl > /dev/null || { echo "torn record in store export"; exit 1; }
jq -se --arg id "$JOB" 'map(select(.id == $id and .state == "done")) | length == 1' \
  < /tmp/ci_store_export.jsonl > /dev/null || { echo "job $JOB missing from store export"; exit 1; }
rm -rf /tmp/ci_censerved "$CENSERVED_STORE" /tmp/ci_store_export.jsonl /tmp/ci_store_export.err
echo "==> censerved smoke ok"

# Cluster smoke: a coordinator and two workers as real processes. One
# job replicates onto both workers with matching digests; then w1 is
# killed -9 and a second job must still finish on w2 alone (its w1 slot
# collapses in virtual time), with the served payload hashing to the
# recorded digest. Finally the cluster drains cleanly: the coordinator
# first (its final anti-entropy sweep tolerates the dead peer), then the
# surviving worker.
echo "==> cluster smoke (coordinator + 2 workers, kill -9 one)"
go build -o /tmp/ci_cluster_censerved ./cmd/censerved
CL_COORD=127.0.0.1:8470; CL_W1=127.0.0.1:8471; CL_W2=127.0.0.1:8472
CL_DIR=$(mktemp -d /tmp/ci_cluster.XXXXXX)
/tmp/ci_cluster_censerved -role worker -node-id w1 -listen "$CL_W1" \
  -store "$CL_DIR/w1" -peers "http://$CL_COORD" -quiet &
CL_W1_PID=$!
/tmp/ci_cluster_censerved -role worker -node-id w2 -listen "$CL_W2" \
  -store "$CL_DIR/w2" -peers "http://$CL_COORD" -quiet &
CL_W2_PID=$!
/tmp/ci_cluster_censerved -role coordinator -listen "$CL_COORD" \
  -store "$CL_DIR/coord" -replication 2 \
  -peers "w1=http://$CL_W1,w2=http://$CL_W2" -quiet &
CL_COORD_PID=$!
for i in $(seq 1 50); do
  curl -sf "http://$CL_COORD/healthz" > /dev/null \
    && curl -sf "http://$CL_W1/healthz" > /dev/null \
    && curl -sf "http://$CL_W2/healthz" > /dev/null && break
  sleep 0.1
done
cl_wait_done() { # $1=job id, $2=max tenths of a second
  local state=
  for i in $(seq 1 "$2"); do
    state=$(curl -sf "http://$CL_COORD/v1/jobs/$1" | jq -r .state)
    [ "$state" = done ] && return 0
    case "$state" in failed|dead|conflict)
      echo "cluster job $1 terminal state $state"
      curl -s "http://$CL_COORD/v1/jobs/$1"; return 1;; esac
    sleep 0.1
  done
  echo "cluster job $1 not done (state=$state)"; return 1
}
cl_check_digest() { # served payload must hash to the recorded digest
  local digest got
  digest=$(curl -sf "http://$CL_COORD/v1/jobs/$1" | jq -r .digest)
  got=$(curl -sf "http://$CL_COORD/v1/results/$1" | sha256sum | cut -d' ' -f1)
  [ -n "$digest" ] && [ "$digest" = "$got" ] \
    || { echo "cluster job $1: payload sha256 $got != recorded digest $digest"; return 1; }
}
JOB_A=$(curl -sf -X POST "http://$CL_COORD/v1/jobs" \
  -d '{"kind":"centrace","endpoint":"az-ep-0-0","domain":"www.globalblocked.example","seed":7}' | jq -r .id)
cl_wait_done "$JOB_A" 100
curl -sf "http://$CL_COORD/v1/jobs/$JOB_A" \
  | jq -e '.replicas == ["w1","w2"]' > /dev/null \
  || { echo "job $JOB_A not on both replicas"; curl -s "http://$CL_COORD/v1/jobs/$JOB_A"; exit 1; }
cl_check_digest "$JOB_A"
kill -9 "$CL_W1_PID"; wait "$CL_W1_PID" 2>/dev/null || true
JOB_B=$(curl -sf -X POST "http://$CL_COORD/v1/jobs" \
  -d '{"kind":"centrace","endpoint":"az-ep-0-0","domain":"www.globalblocked.example","seed":8}' | jq -r .id)
cl_wait_done "$JOB_B" 300   # w1's replica slot must expire in virtual time first
curl -sf "http://$CL_COORD/v1/jobs/$JOB_B" \
  | jq -e '.replicas == ["w2"]' > /dev/null \
  || { echo "job $JOB_B replicas wrong after w1 kill"; curl -s "http://$CL_COORD/v1/jobs/$JOB_B"; exit 1; }
cl_check_digest "$JOB_B"
curl -sf "http://$CL_COORD/metrics" | grep -q '^censerved_cluster_collapses_total [1-9]' \
  || { echo "no slot collapse recorded after killing w1"; exit 1; }
kill -TERM "$CL_COORD_PID"
wait "$CL_COORD_PID" || { echo "coordinator drain exited nonzero"; exit 1; }
kill -TERM "$CL_W2_PID"
wait "$CL_W2_PID" || { echo "worker w2 drain exited nonzero"; exit 1; }
rm -rf /tmp/ci_cluster_censerved "$CL_DIR"
echo "==> cluster smoke ok"

# Cluster throughput trajectory: 1 vs 3 workers through the full
# protocol, every digest asserted inside the benchmark itself.
echo "==> cluster benchmarks -> BENCH_cluster.json"
go test -run '^$' -bench 'BenchmarkClusterThroughput' -benchtime 30x -json \
  ./internal/cluster > BENCH_cluster.json

# Route dynamics + tomography: benchmark epoch recomputation and the
# tomography solver, then run the cross-validation experiment (churn
# tomography vs CenTrace) at two worker counts — output must be
# byte-identical and clear the 80% agreement gate.
echo "==> routing benchmarks -> BENCH_routing.json"
go test -run '^$' -bench 'Benchmark(EpochRecompute|TomographySolve)$' \
  -benchtime 100x -json . > BENCH_routing.json
echo "==> cross-validation experiment (tomography vs CenTrace)"
go build -o /tmp/ci_experiments ./cmd/experiments
/tmp/ci_experiments -exp crossval -workers 1 > /tmp/ci_crossval_w1.txt
/tmp/ci_experiments -exp crossval -workers 4 > /tmp/ci_crossval_w4.txt
cmp /tmp/ci_crossval_w1.txt /tmp/ci_crossval_w4.txt \
  || { echo "crossval output differs across -workers"; exit 1; }
grep -q '^agreement-ok: true$' /tmp/ci_crossval_w1.txt \
  || { echo "crossval agreement below the 80% bar"; cat /tmp/ci_crossval_w1.txt; exit 1; }
rm -f /tmp/ci_experiments /tmp/ci_crossval_w1.txt /tmp/ci_crossval_w4.txt
echo "==> cross-validation ok"

# Crash matrix: every filesystem operation of the store and journal
# workloads is an injection point, for every fault mode (EIO, ENOSPC,
# torn write, durability-lost rename, power cut), across a widened seed
# range. Zero invariant violations — no acknowledged write lost, no torn
# record surfacing, recovery idempotent — is the gate (DESIGN.md §13).
echo "==> crash matrix (CRASH_MATRIX_SEEDS=${CRASH_MATRIX_SEEDS:-50})"
CRASH_MATRIX_SEEDS="${CRASH_MATRIX_SEEDS:-50}" \
  go test -race -run 'TestCrashMatrix' ./internal/serve ./internal/centrace ./internal/vfs/...

# Short fuzz smoke: a few seconds per parser target, enough to catch
# regressions in the grammar/codec round-trips without holding CI hostage.
FUZZTIME="${FUZZTIME:-5s}"
echo "==> fuzz smoke (${FUZZTIME} per target)"
go test -run=^$ -fuzz=FuzzParse -fuzztime="$FUZZTIME" ./internal/httpgram
go test -run=^$ -fuzz=FuzzParse -fuzztime="$FUZZTIME" ./internal/tlsgram
go test -run=^$ -fuzz=FuzzParse -fuzztime="$FUZZTIME" ./internal/dnsgram
go test -run=^$ -fuzz=FuzzDecodePacket -fuzztime="$FUZZTIME" ./internal/netem
go test -run=^$ -fuzz=FuzzFrameReader -fuzztime="$FUZZTIME" ./internal/wire
go test -run=^$ -fuzz=FuzzJournalReplay -fuzztime="$FUZZTIME" ./internal/centrace
go test -run=^$ -fuzz=FuzzRouteEventReplay -fuzztime="$FUZZTIME" ./internal/routedyn
go test -run=^$ -fuzz=FuzzStoreReplay -fuzztime="$FUZZTIME" ./internal/serve
go test -run=^$ -fuzz=FuzzPromEscape -fuzztime="$FUZZTIME" ./internal/obs

echo "==> ci.sh: all green"
