// Package cendev is a from-scratch Go reproduction of "Network Measurement
// Methods for Locating and Examining Censorship Devices" (CoNEXT '22): the
// CenTrace censorship traceroute, the CenFuzz deterministic request fuzzer,
// the CenProbe banner-grab pipeline, and the device clustering analysis,
// all running against a deterministic packet-level network simulator that
// models the paper's four-country study (AZ, BY, KZ, RU).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// substitution notes, and EXPERIMENTS.md for paper-vs-measured results.
// The library lives under internal/; the runnable surfaces are cmd/ and
// examples/. The benchmarks in bench_test.go regenerate every table and
// figure of the paper's evaluation.
package cendev
