module cendev

go 1.22
